/// The socket determinism contract, end to end over real loopback TCP:
/// for a fixed fleet seed, the shapes a CollectorDaemon extracts from a
/// RunLoadgen fleet must be byte-identical to the single-threaded core
/// pipeline AND to the in-process collector path — for every combination
/// of {unlabeled, labeled} x shard count x connection count. The wire
/// changes how reports travel, never what is counted.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/daemon.h"
#include "collector/loadgen.h"
#include "collector/round_coordinator.h"
#include "collector/shapes_io.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/privshape.h"

namespace privshape {
namespace {

using collector::ClientFleet;
using collector::CollectorDaemon;
using collector::CollectorMetrics;
using collector::DaemonOptions;
using collector::LoadgenOptions;
using core::MechanismConfig;

constexpr int kClasses = 3;
constexpr size_t kUsers = 1200;

int PlantedLabel(size_t user) { return static_cast<int>(user % kClasses); }

/// Planted mixture (same family as the in-process collector suites):
/// class 0 mostly "abc", class 1 mostly "cba", class 2 mostly "bab".
Sequence PlantedWord(size_t user, uint64_t seed = 1) {
  Rng rng(DeriveSeed(seed, user));
  double noise = rng.Uniform();
  int cls = noise < 0.15 ? static_cast<int>(rng.Index(kClasses))
                         : PlantedLabel(user);
  if (cls == 0) return {0, 1, 2};
  if (cls == 1) return {2, 1, 0};
  return {1, 0, 1};
}

MechanismConfig TestConfig(bool labeled) {
  MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.num_classes = labeled ? kClasses : 0;
  config.seed = 17;
  return config;
}

ClientFleet TestFleet(const MechanismConfig& config) {
  return ClientFleet(
      kUsers, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed,
      config.num_classes > 0
          ? ClientFleet::LabelFn([](size_t user) { return PlantedLabel(user); })
          : ClientFleet::LabelFn(nullptr));
}

/// One full protocol run over loopback sockets: daemon on an ephemeral
/// port, the fleet multiplexed over `connections` loadgen connections.
/// Returns the daemon's result; `loadgen_result` gets the shapes decoded
/// from the Complete broadcast on the client side.
Result<core::MechanismResult> RunOverSockets(
    const MechanismConfig& config, const ClientFleet& fleet, size_t shards,
    size_t connections, core::MechanismResult* loadgen_result) {
  DaemonOptions options;
  options.port = 0;
  options.min_clients = connections;
  options.num_shards = shards;
  options.num_drainers = 2;
  options.accept_timeout_seconds = 60.0;
  options.round_deadline_seconds = 120.0;
  CollectorDaemon daemon(config, fleet.num_users(), options);
  Status started = daemon.Start();
  if (!started.ok()) return started;

  Result<core::MechanismResult> served = Status::Internal("serve not run");
  CollectorMetrics metrics;
  std::thread serve([&] { served = daemon.Serve(&metrics); });

  LoadgenOptions client;
  client.port = daemon.port();
  client.connections = connections;
  client.batch_size = 64;
  client.timeout_seconds = 120.0;
  auto outcome = collector::RunLoadgen(fleet, client);
  serve.join();
  if (!outcome.ok()) return outcome.status();
  if (!served.ok()) return served.status();

  // Bookkeeping invariants of a clean run: every connection handshaked,
  // nothing was dropped, stale, or deadlined, and the metrics carry the
  // socket ingest marker.
  EXPECT_EQ(daemon.stats().handshakes, connections);
  EXPECT_EQ(daemon.stats().protocol_errors, 0u);
  EXPECT_EQ(daemon.stats().stale_batches, 0u);
  EXPECT_EQ(daemon.stats().deadline_drops, 0u);
  EXPECT_EQ(metrics.ingest, "socket");
  EXPECT_EQ(metrics.connections, connections);
  EXPECT_FALSE(metrics.rounds.empty());
  EXPECT_EQ(outcome->client_errors, 0u);

  *loadgen_result = outcome->result;
  return served;
}

void RunParityMatrix(bool labeled) {
  MechanismConfig config = TestConfig(labeled);
  ClientFleet fleet = TestFleet(config);
  std::vector<Sequence> words = fleet.MaterializeWords();
  std::vector<int> labels = fleet.MaterializeLabels();

  core::PrivShape reference(config);
  auto expected = reference.Run(words, labeled ? &labels : nullptr);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // The in-process collector path must agree too — the daemon, the
  // coordinator, and the core pipeline are three routes to one answer.
  ThreadPool pool(4);
  collector::RoundCoordinator coordinator(config, {}, &pool);
  auto in_process = coordinator.Collect(fleet);
  ASSERT_TRUE(in_process.ok()) << in_process.status();
  EXPECT_TRUE(collector::SameShapes(*expected, *in_process));

  for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    for (size_t connections : {size_t{1}, size_t{8}, size_t{64}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " connections=" + std::to_string(connections));
      core::MechanismResult client_view;
      auto served =
          RunOverSockets(config, fleet, shards, connections, &client_view);
      ASSERT_TRUE(served.ok()) << served.status();
      // Byte-identical on the server side...
      EXPECT_TRUE(collector::SameShapes(*expected, *served));
      // ...and on the client side, through the Complete broadcast.
      EXPECT_TRUE(collector::SameShapes(*expected, client_view));
    }
  }
}

TEST(CollectorDaemonParityTest, UnlabeledMatchesCoreForAllShardsAndConns) {
  RunParityMatrix(/*labeled=*/false);
}

TEST(CollectorDaemonParityTest, LabeledMatchesCoreForAllShardsAndConns) {
  RunParityMatrix(/*labeled=*/true);
}

}  // namespace
}  // namespace privshape
