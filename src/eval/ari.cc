#include "eval/ari.h"

#include <cmath>
#include <map>
#include <utility>

namespace privshape::eval {

namespace {
double Choose2(double n) { return n * (n - 1.0) / 2.0; }
}  // namespace

Result<double> AdjustedRandIndex(const std::vector<int>& labels_a,
                                 const std::vector<int>& labels_b) {
  if (labels_a.size() != labels_b.size()) {
    return Status::InvalidArgument("label vectors must have equal length");
  }
  if (labels_a.empty()) {
    return Status::InvalidArgument("cannot compute ARI of empty labelings");
  }
  // Contingency table.
  std::map<std::pair<int, int>, size_t> joint;
  std::map<int, size_t> row, col;
  for (size_t i = 0; i < labels_a.size(); ++i) {
    joint[{labels_a[i], labels_b[i]}]++;
    row[labels_a[i]]++;
    col[labels_b[i]]++;
  }
  double sum_joint = 0.0, sum_row = 0.0, sum_col = 0.0;
  for (const auto& [_, n] : joint) sum_joint += Choose2(static_cast<double>(n));
  for (const auto& [_, n] : row) sum_row += Choose2(static_cast<double>(n));
  for (const auto& [_, n] : col) sum_col += Choose2(static_cast<double>(n));
  double total = Choose2(static_cast<double>(labels_a.size()));
  double expected = sum_row * sum_col / total;
  double max_index = 0.5 * (sum_row + sum_col);
  double denom = max_index - expected;
  if (std::abs(denom) < 1e-12) return 1.0;  // both partitions trivial
  return (sum_joint - expected) / denom;
}

Result<double> Accuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument("label vectors must have equal length");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("cannot compute accuracy of empty labels");
  }
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace privshape::eval
