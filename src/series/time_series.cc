#include "series/time_series.h"

#include <algorithm>
#include <set>

#include "common/math_utils.h"
#include "common/rng.h"

namespace privshape::series {

std::vector<int> Dataset::Labels() const {
  std::set<int> labels;
  for (const auto& inst : instances) labels.insert(inst.label);
  return {labels.begin(), labels.end()};
}

Dataset Dataset::FilterByLabel(int label) const {
  Dataset out;
  for (const auto& inst : instances) {
    if (inst.label == label) out.instances.push_back(inst);
  }
  return out;
}

void ZNormalizeDataset(Dataset* dataset) {
  for (auto& inst : dataset->instances) {
    ZNormalize(&inst.values);
  }
}

void TrainTestSplit(const Dataset& dataset, double train_fraction,
                    uint64_t seed, Dataset* train, Dataset* test) {
  std::vector<size_t> order(dataset.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(&order);
  size_t n_train = static_cast<size_t>(
      train_fraction * static_cast<double>(dataset.size()));
  train->instances.clear();
  test->instances.clear();
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < n_train) {
      train->instances.push_back(dataset.instances[order[i]]);
    } else {
      test->instances.push_back(dataset.instances[order[i]]);
    }
  }
}

}  // namespace privshape::series
