#include "distance/distance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "series/sequence.h"

namespace privshape {
namespace {

using dist::DtwNumeric;
using dist::DtwSymbolic;
using dist::EditDistance;
using dist::EuclideanNumeric;
using dist::EuclideanSymbolic;
using dist::HausdorffSymbolic;
using dist::MakeDistance;
using dist::Metric;
using dist::MetricFromString;

Sequence Seq(const std::string& s) { return *SequenceFromString(s); }

TEST(MetricTest, FromStringParsesAllNames) {
  EXPECT_EQ(*MetricFromString("dtw"), Metric::kDtw);
  EXPECT_EQ(*MetricFromString("sed"), Metric::kSed);
  EXPECT_EQ(*MetricFromString("edit"), Metric::kSed);
  EXPECT_EQ(*MetricFromString("euclidean"), Metric::kEuclidean);
  EXPECT_EQ(*MetricFromString("l2"), Metric::kEuclidean);
  EXPECT_EQ(*MetricFromString("hausdorff"), Metric::kHausdorff);
  EXPECT_FALSE(MetricFromString("cosine").ok());
}

TEST(MetricTest, NameRoundTrip) {
  for (Metric m : {Metric::kDtw, Metric::kSed, Metric::kEuclidean,
                   Metric::kHausdorff}) {
    EXPECT_EQ(*MetricFromString(dist::MetricName(m)), m);
  }
}

TEST(MetricTest, FactoryProducesMatchingMetric) {
  for (Metric m : {Metric::kDtw, Metric::kSed, Metric::kEuclidean,
                   Metric::kHausdorff}) {
    auto d = MakeDistance(m);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->metric(), m);
  }
}

TEST(DtwTest, IdenticalSequencesAreZero) {
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("abca"), Seq("abca")), 0.0);
}

TEST(DtwTest, WarpingAbsorbsRepeats) {
  // DTW warps the time axis, so "abc" matches "aabbcc" exactly.
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("abc"), Seq("aabbcc")), 0.0);
}

TEST(DtwTest, KnownSmallExample) {
  // a=0 vs b=1 at every aligned step: single substitution costs 1.
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("a"), Seq("b")), 1.0);
  EXPECT_DOUBLE_EQ(DtwSymbolic(Seq("a"), Seq("c")), 2.0);
}

TEST(DtwTest, SymmetricOnRandomInputs) {
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 1 + rng.Index(8); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    for (size_t i = 0; i < 1 + rng.Index(8); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    EXPECT_DOUBLE_EQ(DtwSymbolic(a, b), DtwSymbolic(b, a));
  }
}

TEST(DtwTest, BandConstraintNeverBelowUnconstrained) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 5; ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    EXPECT_GE(DtwSymbolic(a, b, /*band=*/1) + 1e-12, DtwSymbolic(a, b));
  }
}

TEST(DtwTest, EmptyVsEmptyIsZero) {
  EXPECT_DOUBLE_EQ(DtwSymbolic({}, {}), 0.0);
}

TEST(SedTest, ClassicLevenshteinCases) {
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("abc")), 0.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("abd")), 1.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("ab")), 1.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abc"), Seq("bc")), 1.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq(""), Seq("abc")), 3.0);
  EXPECT_DOUBLE_EQ(EditDistance(Seq("abcd"), Seq("badc")), 3.0);
}

TEST(SedTest, TriangleInequalityOnRandomInputs) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    Sequence a, b, c;
    for (size_t i = 0; i < rng.Index(7); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(3)));
    }
    for (size_t i = 0; i < rng.Index(7); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(3)));
    }
    for (size_t i = 0; i < rng.Index(7); ++i) {
      c.push_back(static_cast<Symbol>(rng.Index(3)));
    }
    EXPECT_LE(EditDistance(a, c),
              EditDistance(a, b) + EditDistance(b, c) + 1e-12);
  }
}

TEST(EuclideanSymbolicTest, EqualLength) {
  // (0-1)^2 + (2-1)^2 = 2.
  EXPECT_DOUBLE_EQ(EuclideanSymbolic(Seq("ac"), Seq("bb")),
                   std::sqrt(2.0));
}

TEST(EuclideanSymbolicTest, PadsShorterWithLastSymbol) {
  // "ab" padded to "abb" against "abb" -> 0.
  EXPECT_DOUBLE_EQ(EuclideanSymbolic(Seq("ab"), Seq("abb")), 0.0);
}

TEST(EuclideanSymbolicTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(EuclideanSymbolic({}, {}), 0.0);
  EXPECT_GT(EuclideanSymbolic({}, Seq("cc")), 0.0);
}

TEST(HausdorffTest, IdenticalIsZero) {
  EXPECT_DOUBLE_EQ(HausdorffSymbolic(Seq("abc"), Seq("abc")), 0.0);
}

TEST(HausdorffTest, SymmetricAndNonNegative) {
  Rng rng(24);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    double d = HausdorffSymbolic(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_DOUBLE_EQ(d, HausdorffSymbolic(b, a));
  }
}

TEST(DtwNumericTest, KnownValue) {
  std::vector<double> a = {0, 0, 1, 2};
  std::vector<double> b = {0, 1, 2};
  EXPECT_DOUBLE_EQ(DtwNumeric(a, b), 0.0);  // warping absorbs the repeat
  EXPECT_DOUBLE_EQ(DtwNumeric({1.0}, {4.0}), 3.0);
}

TEST(EuclideanNumericTest, RequiresEqualLength) {
  EXPECT_FALSE(EuclideanNumeric({1.0}, {1.0, 2.0}).ok());
  auto d = EuclideanNumeric({0.0, 3.0}, {4.0, 3.0});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 4.0);
}

// Identity-of-indiscernibles + symmetry + non-negativity across all
// metrics, as a parameterized property sweep.
class MetricAxiomsTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricAxiomsTest, BasicAxiomsOnRandomWords) {
  auto distance = MakeDistance(GetParam());
  Rng rng(25);
  for (int trial = 0; trial < 100; ++trial) {
    Sequence a, b;
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      a.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      b.push_back(static_cast<Symbol>(rng.Index(4)));
    }
    EXPECT_DOUBLE_EQ(distance->Distance(a, a), 0.0);
    EXPECT_GE(distance->Distance(a, b), 0.0);
    EXPECT_DOUBLE_EQ(distance->Distance(a, b), distance->Distance(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(Metric::kDtw, Metric::kSed,
                                           Metric::kEuclidean,
                                           Metric::kHausdorff));

// --- Scratch-reusing / early-abandoning kernels --------------------------
//
// The hot-path overloads must be bit-identical to the allocating ones:
// the collector's byte-identical determinism contract rides on it.

Sequence RandomWord(Rng* rng, size_t max_len, int alphabet) {
  Sequence word;
  size_t len = rng->Index(max_len + 1);  // includes empty words
  for (size_t i = 0; i < len; ++i) {
    word.push_back(static_cast<Symbol>(rng->Index(alphabet)));
  }
  return word;
}

TEST(ScratchKernelTest, DtwScratchOverloadBitIdentical) {
  Rng rng(0xd7a);
  dist::DtwScratch scratch;  // deliberately reused across ALL pairs
  for (int trial = 0; trial < 300; ++trial) {
    Sequence a = RandomWord(&rng, 9, 5);
    Sequence b = RandomWord(&rng, 9, 5);
    for (int band : {-1, 0, 1, 2}) {
      double expect = DtwSymbolic(a, b, band);
      double got = DtwSymbolic(dist::SymbolView(a), dist::SymbolView(b),
                               band, &scratch);
      // Bit-equal, not just close: same kernel, same operation order.
      EXPECT_EQ(expect, got) << "band=" << band << " trial=" << trial;
    }
  }
}

TEST(ScratchKernelTest, EditScratchOverloadBitIdentical) {
  Rng rng(0x5ed);
  dist::DtwScratch scratch;
  for (int trial = 0; trial < 300; ++trial) {
    Sequence a = RandomWord(&rng, 9, 5);
    Sequence b = RandomWord(&rng, 9, 5);
    double expect = EditDistance(a, b);
    double got =
        EditDistance(dist::SymbolView(a), dist::SymbolView(b), &scratch);
    EXPECT_EQ(expect, got) << trial;
  }
}

TEST(ScratchKernelTest, VirtualSpanOverloadsMatchAllMetrics) {
  Rng rng(0x11ad);
  dist::DtwScratch scratch;
  for (Metric m : {Metric::kDtw, Metric::kSed, Metric::kEuclidean,
                   Metric::kHausdorff}) {
    auto distance = MakeDistance(m);
    for (int trial = 0; trial < 120; ++trial) {
      Sequence a = RandomWord(&rng, 8, 4);
      Sequence b = RandomWord(&rng, 8, 4);
      double expect = distance->Distance(a, b);
      double got = distance->Distance(dist::SymbolView(a),
                                      dist::SymbolView(b), &scratch);
      double nullscratch = distance->Distance(dist::SymbolView(a),
                                              dist::SymbolView(b), nullptr);
      EXPECT_EQ(expect, got) << dist::MetricName(m) << " trial " << trial;
      EXPECT_EQ(expect, nullscratch) << dist::MetricName(m);
    }
  }
}

TEST(ScratchKernelTest, SpanViewsOfPrefixesMatchCopies) {
  // The prefix-view path of MatchDistancesInto: viewing the first k
  // symbols equals copying them into a fresh Sequence.
  Sequence word = Seq("cabdacbd");
  dist::DtwScratch scratch;
  for (size_t k = 0; k <= word.size(); ++k) {
    Sequence copy(word.begin(), word.begin() + static_cast<long>(k));
    dist::SymbolView view = dist::SymbolView(word).Sub(0, k);
    EXPECT_EQ(EditDistance(copy, Seq("abc")),
              EditDistance(view, dist::SymbolView(Seq("abc")), &scratch));
    EXPECT_EQ(DtwSymbolic(copy, Seq("abc")),
              DtwSymbolic(view, dist::SymbolView(Seq("abc")), -1, &scratch));
  }
}

TEST(BoundedKernelTest, ExactBelowCutoffInfAtOrAbove) {
  Rng rng(0xb0b);
  dist::DtwScratch scratch;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 300; ++trial) {
    Sequence a = RandomWord(&rng, 8, 5);
    Sequence b = RandomWord(&rng, 8, 5);
    if (a.empty() || b.empty()) continue;  // bounded kernels hit the DP
    double sed = EditDistance(a, b);
    double dtw = DtwSymbolic(a, b);
    // Cutoff above the true distance: exact result, bit-equal.
    EXPECT_EQ(dist::EditDistanceBounded(a, b, sed + 1.0, &scratch), sed);
    EXPECT_EQ(dist::DtwSymbolicBounded(a, b, -1, dtw + 1.0, &scratch), dtw);
    EXPECT_EQ(dist::DtwSymbolicBounded(a, b, 1, kInf, &scratch),
              DtwSymbolic(a, b, 1));
    // Cutoff at or below it: the contract only promises >= cutoff, and
    // the row-minimum abandon returns infinity.
    EXPECT_GE(dist::EditDistanceBounded(a, b, sed, &scratch), sed);
    EXPECT_GE(dist::DtwSymbolicBounded(a, b, -1, dtw, &scratch), dtw);
    if (sed > 0.0) {
      EXPECT_GE(dist::EditDistanceBounded(a, b, sed * 0.5, &scratch),
                sed * 0.5);
    }
  }
}

TEST(BoundedKernelTest, DistanceBoundedDefaultIsExactForAllMetrics) {
  Rng rng(0xabcd);
  dist::DtwScratch scratch;
  for (Metric m : {Metric::kDtw, Metric::kSed, Metric::kEuclidean,
                   Metric::kHausdorff}) {
    auto distance = MakeDistance(m);
    for (int trial = 0; trial < 80; ++trial) {
      Sequence a = RandomWord(&rng, 7, 4);
      Sequence b = RandomWord(&rng, 7, 4);
      double full = distance->Distance(a, b);
      // A cutoff above the result must yield the exact distance...
      EXPECT_EQ(distance->DistanceBounded(a, b, full + 1.0, &scratch), full)
          << dist::MetricName(m);
      // ...and any abandoned value may never *understate* the distance.
      EXPECT_GE(distance->DistanceBounded(a, b, full * 0.5, &scratch),
                std::min(full, full * 0.5))
          << dist::MetricName(m);
    }
  }
}

}  // namespace
}  // namespace privshape
