/// The daemon's stats endpoint, scraped mid-run over loopback: a full
/// daemon + loadgen protocol run with stats enabled, while the test
/// thread scrapes /metrics and the JSON path in a loop for as long as
/// the protocol is in flight. Scrapes must be served without pausing
/// ingestion (the endpoint rides the daemon's epoll loop), must expose
/// live daemon state, and the run's result must be unaffected by being
/// observed.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/daemon.h"
#include "collector/loadgen.h"
#include "collector/shapes_io.h"
#include "common/rng.h"
#include "common/socket.h"
#include "core/privshape.h"

namespace privshape {
namespace {

constexpr size_t kUsers = 3000;

Sequence PlantedWord(size_t user, uint64_t seed = 1) {
  Rng rng(DeriveSeed(seed, user));
  double noise = rng.Uniform();
  int cls = noise < 0.2 ? static_cast<int>(rng.Index(3))
                        : static_cast<int>(user % 3);
  if (cls == 0) return {0, 1, 2};
  if (cls == 1) return {2, 1, 0};
  return {1, 0, 1};
}

core::MechanismConfig TestConfig() {
  core::MechanismConfig config;
  config.epsilon = 6.0;
  config.t = 3;
  config.k = 2;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 6;
  config.metric = dist::Metric::kSed;
  config.seed = 17;
  return config;
}

/// One blocking HTTP/1.0 GET; empty string on any failure (scrapes that
/// race the end-of-run teardown are allowed to fail).
std::string Scrape(uint16_t port, const std::string& path) {
  auto fd = TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return "";
  SetRecvTimeout(fd->get(), 10.0);
  if (!WriteAll(fd->get(), "GET " + path + " HTTP/1.0\r\n\r\n").ok()) {
    return "";
  }
  std::string response;
  char buf[4096];
  while (true) {
    auto n = ReadSome(fd->get(), buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(buf, *n);
  }
  return response;
}

TEST(CollectorStatsScrape, LiveMetricsMidRun) {
  core::MechanismConfig config = TestConfig();
  collector::ClientFleet fleet(
      kUsers, [](size_t user) { return PlantedWord(user); }, config.metric,
      config.seed);

  collector::DaemonOptions options;
  options.port = 0;
  options.min_clients = 2;
  options.num_drainers = 2;
  options.accept_timeout_seconds = 60.0;
  options.round_deadline_seconds = 120.0;
  options.stats_enabled = true;
  options.stats_port = 0;  // ephemeral; read back below
  collector::CollectorDaemon daemon(config, kUsers, options);
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_GT(daemon.stats_port(), 0);
  uint16_t stats_port = daemon.stats_port();

  Result<core::MechanismResult> served = Status::Internal("serve not run");
  collector::CollectorMetrics metrics;
  std::thread serve([&] { served = daemon.Serve(&metrics); });

  collector::LoadgenOptions client;
  client.port = daemon.port();
  client.connections = 2;
  client.batch_size = 64;
  client.timeout_seconds = 120.0;
  Result<collector::LoadgenOutcome> outcome =
      Status::Internal("loadgen not run");
  std::atomic<bool> load_done{false};
  std::thread load([&] {
    outcome = collector::RunLoadgen(fleet, client);
    load_done.store(true, std::memory_order_release);
  });

  // Scrape both paths continuously for the whole run. The daemon serves
  // each scrape between protocol frames, so hits here are by definition
  // mid-run; the late scrapes land while rounds are in flight.
  size_t text_hits = 0;
  size_t json_hits = 0;
  bool saw_daemon_counter = false;
  bool saw_live_json = false;
  while (!load_done.load(std::memory_order_acquire)) {
    std::string text = Scrape(stats_port, "/metrics");
    if (!text.empty()) {
      ++text_hits;
      EXPECT_NE(text.find("200 OK"), std::string::npos);
      EXPECT_NE(text.find("text/plain"), std::string::npos);
      if (text.find("daemon_handshakes_total") != std::string::npos) {
        saw_daemon_counter = true;
      }
    }
    std::string json = Scrape(stats_port, "/stats.json");
    if (!json.empty()) {
      ++json_hits;
      EXPECT_NE(json.find("200 OK"), std::string::npos);
      EXPECT_NE(json.find("application/json"), std::string::npos);
      // Live daemon state, present in every snapshot.
      if (json.find("\"round\"") != std::string::npos &&
          json.find("\"round_in_flight\"") != std::string::npos &&
          json.find("\"live_connections\"") != std::string::npos) {
        saw_live_json = true;
      }
    }
  }
  load.join();
  serve.join();

  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(served.ok()) << served.status();
  // Being scraped must not change what is counted.
  EXPECT_TRUE(collector::SameShapes(*served, outcome->result));
  EXPECT_EQ(outcome->client_errors, 0u);

  EXPECT_GT(text_hits, 0u);
  EXPECT_GT(json_hits, 0u);
  EXPECT_TRUE(saw_daemon_counter);
  EXPECT_TRUE(saw_live_json);
}

}  // namespace
}  // namespace privshape
