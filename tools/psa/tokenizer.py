"""Pure-Python C++ tokenizer — the fallback engine's frontend.

Produces the shared token IR (tools/psa/ir.py) with no compiler in the
loop. It is not a full lexer — it does not do preprocessing — but it is
exact about the things the checks depend on:

  * comments (// and /* */) and string/char literals never leak tokens
    (a banned identifier inside a string is NOT a finding);
  * raw strings R"delim(...)delim" are skipped correctly;
  * line numbers survive multi-line constructs;
  * ``#include "..."`` edges are captured; other preprocessor lines are
    dropped wholesale (including line continuations) so macro bodies do
    not fake function bodies — except that object-like marker macros in
    normal code positions (PS_RNG_WORDS etc.) are ordinary identifiers.
"""

import re

from . import ir

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# Pre-processed numbers: ints, floats, hex, exponents, digit separators,
# and literal suffixes. One token per literal is all the checks need.
_NUMBER_RE = re.compile(
    r"(?:0[xX][0-9a-fA-F']+|(?:\d[\d']*)?\.\d[\d']*(?:[eE][+-]?\d+)?"
    r"|\d[\d']*\.?(?:[eE][+-]?\d+)?)[uUlLfF]*")
_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Multi-char operators that matter for pattern matching (::, ->, etc.).
_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")


def tokenize(text, path):
    """Returns an ir.SourceFile for `text` (repo-relative `path`)."""
    tokens = []
    includes = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            line += text.count("\n", i, end)
            i = end
            continue
        # Preprocessor lines: keep #include "..." edges, drop the rest
        # (respecting backslash continuations).
        if c == "#" and _at_line_start(text, i):
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                if text[max(i, k - 1):k] == "\\" or (
                        k >= 2 and text[k - 2:k] == "\\\r"):
                    j = k + 1
                    continue
                break
            m = _INCLUDE_RE.match(text[i:k])
            if m:
                includes.append((line, m.group(1)))
            line += text.count("\n", i, k)
            i = k
            continue
        # Raw strings.
        m = re.match(r'(?:u8|[uUL])?R"([^()\\ \t\n]*)\(', text[i:])
        if m:
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            end = n if j < 0 else j + len(close)
            tokens.append(ir.Token(ir.STRING, text[i:end], line))
            line += text.count("\n", i, end)
            i = end
            continue
        # Ordinary string / char literals (with escapes).
        if c == '"' or c == "'" or re.match(r'(?:u8|[uUL])["\']', text[i:]):
            start = i
            while text[i] not in "\"'":
                i += 1
            quote = text[i]
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i = min(i + 1, n)
            kind = ir.STRING if quote == '"' else ir.CHAR
            tokens.append(ir.Token(kind, text[start:i], line))
            line += text.count("\n", start, i)
            continue
        # Identifiers / keywords / marker macros.
        m = _IDENT_RE.match(text, i)
        if m:
            tokens.append(ir.Token(ir.IDENT, m.group(0), line))
            i = m.end()
            continue
        # Numbers.
        if c.isdigit() or (c == "." and i + 1 < n and
                           text[i + 1].isdigit()):
            m = _NUMBER_RE.match(text, i)
            tokens.append(ir.Token(ir.NUMBER, m.group(0), line))
            i = m.end()
            continue
        # Punctuation (longest match first).
        for group in (_PUNCT3, _PUNCT2):
            hit = next((p for p in group if text.startswith(p, i)), None)
            if hit:
                tokens.append(ir.Token(ir.PUNCT, hit, line))
                i += len(hit)
                break
        else:
            tokens.append(ir.Token(ir.PUNCT, c, line))
            i += 1
    return ir.SourceFile(path=path, tokens=tokens, includes=includes)


def _at_line_start(text, i):
    j = i - 1
    while j >= 0 and text[j] in " \t":
        j -= 1
    return j < 0 or text[j] == "\n"
