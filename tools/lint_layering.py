#!/usr/bin/env python3
"""Layering lint: enforce the module dependency DAG over #include edges.

The architecture docs (docs/ARCHITECTURE.md) promise a strict module
DAG — `common/` depends on nothing, `net/` never reaches into `core/`,
and so on. The build system encodes the same DAG as target_link_libraries
edges, but nothing stops a stray `#include "core/..."` inside `net/` from
compiling anyway (headers are all on one include path). This linter makes
the DAG real:

  1. Every `#include "mod/..."` in src/<mod>/ must point at <mod> itself
     or one of its *declared direct dependencies* (ALLOWED_DEPS below).
  2. ALLOWED_DEPS is cross-checked against the target_link_libraries
     edges parsed out of src/*/CMakeLists.txt, so the linter's DAG, the
     build's DAG, and the documented DAG cannot drift apart silently.

Usage:
  tools/lint_layering.py [--root REPO_ROOT]   # lint src/, exit 1 on error
  tools/lint_layering.py --self-test          # synthetic violating tree

Exit codes: 0 clean, 1 violations found, 2 internal/config error.
"""

import argparse
import os
import re
import sys
import tempfile

# Module -> direct dependencies a file in src/<module>/ may include from.
# This is the single source of truth for the linter; it must match the
# target_link_libraries edges in src/<module>/CMakeLists.txt (checked at
# runtime) and the diagram in docs/ARCHITECTURE.md (checked by review).
ALLOWED_DEPS = {
    "common": set(),
    "telemetry": {"common"},
    "series": {"common"},
    "sax": {"common", "series"},
    "trie": {"common", "series"},
    "distance": {"common", "series"},
    "ldp": {"common"},
    "patternldp": {"common", "ldp", "series"},
    "eval": {"common", "distance", "series"},
    "core": {"common", "distance", "eval", "ldp", "sax", "series", "trie"},
    "protocol": {"common", "core", "distance", "ldp", "series"},
    "net": {"common", "protocol", "series", "telemetry"},
    "collector": {
        "common", "core", "distance", "net", "protocol", "series",
        "telemetry",
    },
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
LINK_RE = re.compile(
    r"target_link_libraries\s*\(\s*privshape_(\w+)([^)]*)\)",
    re.DOTALL,
)
SOURCE_EXTS = (".h", ".cc")
# Build junk that can sneak into a source dir (in-source cmake runs).
SKIP_DIRS = {"CMakeFiles"}


def list_source_files(src_root):
    for module in sorted(os.listdir(src_root)):
        mod_dir = os.path.join(src_root, module)
        if not os.path.isdir(mod_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(mod_dir):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield module, os.path.join(dirpath, name)


def lint_file(module, path, allowed, errors):
    """Appends one error string per violating include in `path`."""
    mod_allowed = allowed[module] | {module}
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError as e:
        errors.append(f"{path}: unreadable: {e}")
        return
    for lineno, line in enumerate(lines, start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/", 1)[0]
        if target in allowed and target not in mod_allowed:
            errors.append(
                f"{path}:{lineno}: module '{module}' must not include "
                f'"{m.group(1)}" — \'{target}\' is not a declared '
                f"dependency (allowed: "
                f"{', '.join(sorted(mod_allowed - {module})) or 'none'})"
            )


def cmake_edges(src_root, modules):
    """target_link_libraries edges per module from src/*/CMakeLists.txt."""
    edges = {}
    for module in modules:
        cml = os.path.join(src_root, module, "CMakeLists.txt")
        if not os.path.isfile(cml):
            continue
        with open(cml, encoding="utf-8") as f:
            text = f.read()
        deps = set()
        for target, body in LINK_RE.findall(text):
            if target != module:
                continue  # edges of executables in the same dir
            deps |= {
                dep for dep in re.findall(r"privshape_(\w+)", body)
                if dep in modules and dep != module
            }
        edges[module] = deps
    return edges


def check_cmake_consistency(src_root, errors):
    edges = cmake_edges(src_root, set(ALLOWED_DEPS))
    for module, deps in sorted(edges.items()):
        declared = ALLOWED_DEPS[module] - {"build_flags"}
        if deps != declared:
            extra = deps - declared
            missing = declared - deps
            detail = []
            if extra:
                detail.append(f"CMake links {sorted(extra)} not in linter DAG")
            if missing:
                detail.append(
                    f"linter DAG allows {sorted(missing)} not linked in CMake"
                )
            errors.append(
                f"src/{module}/CMakeLists.txt: dependency drift — "
                + "; ".join(detail)
                + " (update ALLOWED_DEPS in tools/lint_layering.py, the "
                "CMake edges, and docs/ARCHITECTURE.md together)"
            )


def run_lint(root):
    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        print(f"lint_layering: no src/ under {root}", file=sys.stderr)
        return 2
    errors = []
    check_cmake_consistency(src_root, errors)
    seen_modules = set()
    for module, path in list_source_files(src_root):
        if module not in ALLOWED_DEPS:
            errors.append(
                f"{path}: unknown module 'src/{module}/' — add it to "
                "ALLOWED_DEPS in tools/lint_layering.py"
            )
            continue
        seen_modules.add(module)
        lint_file(module, path, ALLOWED_DEPS, errors)
    for module in sorted(set(ALLOWED_DEPS) - seen_modules):
        errors.append(
            f"lint_layering: module '{module}' is in ALLOWED_DEPS but has "
            f"no sources under src/ — stale entry?"
        )
    if errors:
        for e in errors:
            print(e)
        print(f"lint_layering: {len(errors)} violation(s)")
        return 1
    print(
        f"lint_layering: OK — {len(seen_modules)} modules, DAG consistent "
        "with CMake edges, no illegal includes"
    )
    return 0


def self_test():
    """Builds a synthetic tree with known violations and asserts on them."""
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="lint_layering_") as tmp:
        src = os.path.join(tmp, "src")
        cases = {
            # Clean module: own include + declared dep.
            "series/ok.h": '#include "series/other.h"\n'
                           '#include "common/status.h"\n',
            # Violation: common reaching up into telemetry.
            "common/bad_up.cc": '#include "telemetry/telemetry.h"\n',
            # Violation: net reaching into core (transitive-only dep).
            "net/bad_core.cc": '#include "core/config.h"\n',
            # Not a violation: angle includes and non-module quotes.
            "common/ok.cc": "#include <vector>\n"
                            '#include "common/status.h"\n',
            # Violation on a later line, to check line numbers.
            "ldp/bad_line3.h": "#pragma once\n"
                               '#include "common/status.h"\n'
                               '#include "eval/ari.h"\n',
        }
        for rel, content in cases.items():
            path = os.path.join(src, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        # Minimal consistent CMakeLists for the modules present.
        for module in {rel.split("/", 1)[0] for rel in cases}:
            deps = " ".join(
                f"privshape_{d}" for d in sorted(ALLOWED_DEPS[module])
            )
            link = (
                f"target_link_libraries(privshape_{module} PUBLIC {deps})\n"
                if deps else ""
            )
            cml = os.path.join(src, module, "CMakeLists.txt")
            with open(cml, "w", encoding="utf-8") as f:
                f.write(f"add_library(privshape_{module} x.cc)\n{link}")

        errors = []
        check_cmake_consistency(src, errors)
        # Modules with no sources in the synthetic tree are reported by
        # run_lint, not by the consistency check.
        expect(not errors, f"consistency check flagged clean tree: {errors}")

        errors = []
        for module, path in list_source_files(src):
            if module in ALLOWED_DEPS:
                lint_file(module, path, ALLOWED_DEPS, errors)
        expect(len(errors) == 3, f"expected 3 violations, got: {errors}")
        joined = "\n".join(errors)
        expect("bad_up.cc:1" in joined, "common->telemetry not flagged")
        expect("bad_core.cc:1" in joined, "net->core not flagged")
        expect("bad_line3.h:3" in joined, "line number wrong for ldp->eval")
        expect("ok.h" not in joined, "clean series file flagged")
        expect("ok.cc" not in joined, "clean common file flagged")

        # Drift detection: give 'series' an undeclared CMake edge.
        with open(os.path.join(src, "series", "CMakeLists.txt"), "a",
                  encoding="utf-8") as f:
            f.write("target_link_libraries(privshape_series PUBLIC "
                    "privshape_ldp)\n")
        errors = []
        check_cmake_consistency(src, errors)
        expect(
            any("dependency drift" in e and "series" in e for e in errors),
            f"CMake drift not detected: {errors}",
        )

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}")
        return 1
    print("lint_layering: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the synthetic-tree self-test instead of linting",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(args.root)


if __name__ == "__main__":
    sys.exit(main())
