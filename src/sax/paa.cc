#include "sax/paa.h"

namespace privshape::sax {

Result<std::vector<double>> PiecewiseAggregate(
    const std::vector<double>& values, int w) {
  if (w < 1) return Status::InvalidArgument("segment length must be >= 1");
  if (values.empty()) {
    return Status::InvalidArgument("cannot aggregate an empty series");
  }
  size_t seg_len = static_cast<size_t>(w);
  size_t num_segments = (values.size() + seg_len - 1) / seg_len;
  std::vector<double> out;
  out.reserve(num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    size_t begin = s * seg_len;
    size_t end = std::min(begin + seg_len, values.size());
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += values[i];
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

}  // namespace privshape::sax
