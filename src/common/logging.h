#ifndef PRIVSHAPE_COMMON_LOGGING_H_
#define PRIVSHAPE_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace privshape {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level (default kInfo). Messages below it are
/// dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one structured line to stderr:
///   <ISO-8601 UTC timestamp> <LEVEL> [component] message
/// (the component bracket is omitted when `component` is empty).
/// Thread-safe; one line per call, never interleaved.
void LogMessage(LogLevel level, std::string_view component,
                const std::string& message);

/// Back-compat single-argument form: no component tag.
inline void LogMessage(LogLevel level, const std::string& message) {
  LogMessage(level, std::string_view(), message);
}

namespace internal {

/// Stream-style builder so call sites read
///   PS_LOG(kInfo) << "x=" << x;
///   PS_LOG(kInfo, "daemon") << "round started" << Kv("round", 3);
class LogStream {
 public:
  explicit LogStream(LogLevel level, std::string_view component = {})
      : level_(level), component_(component) {}
  ~LogStream() { LogMessage(level_, component_, ss_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream ss_;
};

}  // namespace internal

/// A `key=value` field for structured log lines: streams as
/// " key=value" (leading space), so fields chain naturally after the
/// message text. Values containing spaces are quoted.
template <typename T>
std::string Kv(std::string_view key, const T& value) {
  std::ostringstream ss;
  ss << ' ' << key << '=' << value;
  std::string out = ss.str();
  // Quote a value with embedded whitespace so line parsers stay simple.
  size_t eq = out.find('=');
  if (out.find(' ', eq) != std::string::npos) {
    out = ' ' + std::string(key) + "=\"" + out.substr(eq + 1) + '"';
  }
  return out;
}

#define PS_LOG_INTERNAL_1(level) \
  ::privshape::internal::LogStream(::privshape::LogLevel::level)
#define PS_LOG_INTERNAL_2(level, component) \
  ::privshape::internal::LogStream(::privshape::LogLevel::level, component)
#define PS_LOG_INTERNAL_PICK(_1, _2, name, ...) name

/// PS_LOG(kInfo) << ...              — untagged (legacy call sites)
/// PS_LOG(kInfo, "daemon") << ...    — component-tagged structured line
#define PS_LOG(...)                                              \
  PS_LOG_INTERNAL_PICK(__VA_ARGS__, PS_LOG_INTERNAL_2,           \
                       PS_LOG_INTERNAL_1)(__VA_ARGS__)

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_LOGGING_H_
