#ifndef PRIVSHAPE_PROTOCOL_CODEC_H_
#define PRIVSHAPE_PROTOCOL_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace privshape::proto {

/// Minimal binary codec for report messages: LEB128 varints for integers,
/// fixed 8-byte little-endian IEEE754 for doubles, length-prefixed byte
/// strings. No allocation tricks — reports are tiny (a few bytes per
/// user), so clarity wins.
class Encoder {
 public:
  void PutVarint(uint64_t value);
  void PutDouble(double value);
  void PutBytes(const std::vector<uint8_t>& bytes);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Streaming decoder over an encoded buffer. Every getter returns a
/// Status-bearing Result so truncated or corrupt reports surface as
/// errors, never as silent garbage.
class Decoder {
 public:
  explicit Decoder(std::string buffer) : buffer_(std::move(buffer)) {}

  Result<uint64_t> GetVarint();
  Result<double> GetDouble();
  Result<std::vector<uint8_t>> GetBytes();

  /// True once the whole buffer is consumed.
  bool AtEnd() const { return pos_ == buffer_.size(); }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace privshape::proto

#endif  // PRIVSHAPE_PROTOCOL_CODEC_H_
