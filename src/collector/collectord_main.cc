/// \file
/// `privshape_collectord` — the PrivShape collection protocol served over
/// TCP. The daemon owns only the mechanism configuration and the fleet
/// size; the users' private words live on the client side
/// (privshape_loadgen or any speaker of the net/ wire protocol). Runs the
/// whole Algorithm 2 protocol once a quorum of clients handshakes, prints
/// the extracted shapes, and exits.
///
/// Examples:
///   privshape_collectord --port 9477 --users 100000 --min-clients 8
///   privshape_collectord --port 0 --users 50000 --dataset symbols
///   privshape_collectord --port 9478 --users 50000 --num-classes 3
///       --json collectord-metrics.json
///
/// SIGINT/SIGTERM: finishes draining the round in flight, closes every
/// socket, still writes --json metrics, exits 3.

#include <cstdio>
#include <iostream>
#include <string>

#include "collector/client_fleet.h"
#include "collector/daemon.h"
#include "collector/shapes_io.h"
#include "common/cli.h"
#include "common/shutdown.h"
#include "telemetry/trace.h"

namespace {

using namespace privshape;  // NOLINT(build/namespaces)

/// Non-negative flag value, parsed strictly (same contract as the
/// in-process collector CLI: typos fail loudly, never run defaults).
Result<size_t> GetCount(const CliArgs& args, const std::string& name,
                        int def) {
  auto value = args.GetIntStatus(name, def);
  if (!value.ok()) return value.status();
  if (*value < 0) {
    return Status::InvalidArgument("--" + name + " must be >= 0");
  }
  return static_cast<size_t>(*value);
}

/// Mechanism config from flags: the generated-dataset defaults plus the
/// same overrides privshape_collector accepts. The loadgen builds its
/// fleet from the same flags — seed agreement is enforced by the
/// handshake, the rest by --check.
Result<core::MechanismConfig> ConfigFromArgs(const CliArgs& args) {
  std::string dataset = args.GetString("dataset", "trace");
  auto config = collector::GeneratedDatasetConfig(dataset);
  if (!config.ok()) return config.status();
  auto epsilon = args.GetDoubleStatus("epsilon", config->epsilon);
  if (!epsilon.ok()) return epsilon.status();
  config->epsilon = *epsilon;
  auto seed = args.GetIntStatus("seed", 2023);
  if (!seed.ok()) return seed.status();
  config->seed = static_cast<uint64_t>(*seed);
  auto k = args.GetIntStatus("k", config->k);
  if (!k.ok()) return k.status();
  config->k = *k;
  auto c = args.GetIntStatus("c", config->c);
  if (!c.ok()) return c.status();
  config->c = *c;
  auto classes = args.GetIntStatus("num_classes", 0);
  if (!classes.ok()) return classes.status();
  classes = args.GetIntStatus("num-classes", *classes);
  if (!classes.ok()) return classes.status();
  if (*classes < 0) {
    return Status::InvalidArgument("--num-classes must be >= 0");
  }
  config->num_classes = *classes;
  return config;
}

int Main(int argc, char** argv) {
  CliArgs args(argc, argv);
  InstallShutdownHandler();

  auto config = ConfigFromArgs(args);
  if (!config.ok()) {
    std::cerr << "privshape_collectord: " << config.status() << "\n";
    return 1;
  }
  auto users = GetCount(args, "users", 100000);
  auto port = GetCount(args, "port", 0);
  auto min_clients = GetCount(args, "min-clients", 1);
  auto shards = GetCount(args, "shards", 0);
  auto drainers = GetCount(args, "drainers", 2);
  auto queue_depth = GetCount(args, "queue-depth",
                              static_cast<int>(collector::DaemonOptions{}
                                                   .queue_depth));
  auto accept_timeout = args.GetDoubleStatus("accept-timeout", 30.0);
  auto round_deadline = args.GetDoubleStatus("round-deadline", 30.0);
  for (const auto* flag : {&users, &port, &min_clients, &shards, &drainers,
                           &queue_depth}) {
    if (!flag->ok()) {
      std::cerr << "privshape_collectord: " << flag->status() << "\n";
      return 1;
    }
  }
  if (!accept_timeout.ok() || !round_deadline.ok()) {
    std::cerr << "privshape_collectord: "
              << (!accept_timeout.ok() ? accept_timeout.status()
                                       : round_deadline.status())
              << "\n";
    return 1;
  }
  if (*port > 65535) {
    std::cerr << "privshape_collectord: --port must be <= 65535\n";
    return 1;
  }
  if (*min_clients == 0) {
    std::cerr << "privshape_collectord: --min-clients must be >= 1\n";
    return 1;
  }

  collector::DaemonOptions options;
  options.host = args.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(*port);
  options.min_clients = *min_clients;
  options.accept_timeout_seconds = *accept_timeout;
  options.round_deadline_seconds = *round_deadline;
  options.num_shards = *shards;
  options.num_drainers = *drainers;
  options.queue_depth = *queue_depth;
  if (args.Has("stats-port")) {
    auto stats_port = GetCount(args, "stats-port", 0);
    if (!stats_port.ok() || *stats_port > 65535) {
      std::cerr << "privshape_collectord: --stats-port must be in "
                   "[0, 65535]\n";
      return 1;
    }
    options.stats_enabled = true;
    options.stats_port = static_cast<uint16_t>(*stats_port);
  }

  // --trace FILE: record per-round/per-connection spans and write a
  // chrome://tracing JSON on exit.
  telemetry::ScopedTraceFile trace(args.GetString("trace", ""));

  collector::CollectorDaemon daemon(*config, *users, options);
  Status started = daemon.Start();
  if (!started.ok()) {
    std::cerr << "privshape_collectord: " << started << "\n";
    return 1;
  }
  // CI greps this line for the bound port; flush before blocking.
  std::printf("privshape_collectord: listening on %s:%u (%zu users, "
              "min %zu clients)\n",
              options.host.c_str(), daemon.port(), *users, *min_clients);
  if (options.stats_enabled) {
    // CI greps this line for the scrape port.
    std::printf("privshape_collectord: stats endpoint on %s:%u\n",
                options.host.c_str(), daemon.stats_port());
  }
  std::fflush(stdout);

  collector::CollectorMetrics metrics;
  auto result = daemon.Serve(&metrics);

  bool labeled = config->num_classes > 0;
  std::string json = args.GetString("json", "");
  auto write_json = [&](const core::MechanismResult* shapes) -> bool {
    if (json.empty()) return true;
    JsonValue doc = metrics.ToJson();
    if (shapes != nullptr) {
      doc.Set("shapes", collector::ShapesJson(*shapes, labeled));
    }
    Status written = collector::WriteJsonFile(doc, json);
    if (!written.ok()) {
      std::cerr << "privshape_collectord: " << written << "\n";
      return false;
    }
    std::printf("metrics written to %s\n", json.c_str());
    return true;
  };

  if (!result.ok()) {
    std::cerr << "privshape_collectord: " << result.status() << "\n";
    // A graceful shutdown still leaves a usable metrics artifact behind.
    bool wrote = write_json(nullptr);
    if (result.status().code() == StatusCode::kCancelled && wrote) return 3;
    return 1;
  }

  collector::PrintShapes(*result, labeled);
  std::printf("\n%-10s %10s %10s %10s %12s %10s %12s %12s\n", "stage",
              "users", "accepted", "rejected", "accepted/s", "seconds",
              "ingp50(us)", "ingp99(us)");
  for (const auto& round : metrics.rounds) {
    std::printf("%-10s %10zu %10zu %10zu %12.0f %10.3f %12.1f %12.1f\n",
                round.stage.c_str(), round.users, round.accepted,
                round.rejected, round.AcceptedPerSec(), round.seconds,
                round.ingest_p50_ns / 1000.0, round.ingest_p99_ns / 1000.0);
  }
  const auto& stats = daemon.stats();
  std::printf("connections: %zu handshaked, %zu disconnects, "
              "%zu protocol errors, %zu stale batches, %zu deadline drops\n",
              stats.handshakes, stats.disconnects, stats.protocol_errors,
              stats.stale_batches, stats.deadline_drops);
  if (!write_json(&*result)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
