#include "eval/shape_matching.h"

#include <gtest/gtest.h>

namespace privshape {
namespace {

using eval::AssignToNearestShape;
using eval::LabeledShape;
using eval::NearestShapeClassifier;

TEST(AssignTest, PicksNearestShape) {
  std::vector<Sequence> shapes = {{0, 1, 2}, {2, 1, 0}};
  std::vector<Sequence> sequences = {{0, 1, 2}, {2, 1, 0}, {0, 1, 1}};
  auto assign =
      AssignToNearestShape(sequences, shapes, dist::Metric::kSed);
  ASSERT_TRUE(assign.ok());
  EXPECT_EQ((*assign)[0], 0);
  EXPECT_EQ((*assign)[1], 1);
  EXPECT_EQ((*assign)[2], 0);  // one edit from "abc", two from "cba"
}

TEST(AssignTest, EmptyShapesFails) {
  EXPECT_FALSE(AssignToNearestShape({{0}}, {}, dist::Metric::kSed).ok());
}

TEST(AssignTest, EmptySequencesYieldsEmpty) {
  std::vector<Sequence> shapes = {{0}};
  auto assign = AssignToNearestShape({}, shapes, dist::Metric::kDtw);
  ASSERT_TRUE(assign.ok());
  EXPECT_TRUE(assign->empty());
}

TEST(ClassifierTest, ClassifiesByNearestLabeledShape) {
  std::vector<LabeledShape> shapes = {
      {{0, 1, 2}, 0},  // class 0: "abc"
      {{2, 1, 0}, 1},  // class 1: "cba"
  };
  auto clf = NearestShapeClassifier::Create(shapes, dist::Metric::kSed);
  ASSERT_TRUE(clf.ok());
  EXPECT_EQ(clf->Classify({0, 1, 2}), 0);
  EXPECT_EQ(clf->Classify({2, 1, 0}), 1);
  EXPECT_EQ(clf->Classify({0, 1}), 0);
  EXPECT_EQ(clf->Classify({2, 1}), 1);
}

TEST(ClassifierTest, BatchMatchesSingle) {
  std::vector<LabeledShape> shapes = {{{0, 1}, 3}, {{1, 0}, 5}};
  auto clf = NearestShapeClassifier::Create(shapes, dist::Metric::kDtw);
  ASSERT_TRUE(clf.ok());
  std::vector<Sequence> batch = {{0, 1}, {1, 0}, {0, 0, 1}};
  auto preds = clf->ClassifyBatch(batch);
  ASSERT_EQ(preds.size(), 3u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(preds[i], clf->Classify(batch[i]));
  }
}

TEST(ClassifierTest, MultipleShapesPerClass) {
  std::vector<LabeledShape> shapes = {
      {{0, 1, 2}, 0},
      {{0, 2, 1}, 0},
      {{2, 1, 0}, 1},
  };
  auto clf = NearestShapeClassifier::Create(shapes, dist::Metric::kSed);
  ASSERT_TRUE(clf.ok());
  EXPECT_EQ(clf->Classify({0, 2, 1}), 0);
}

TEST(ClassifierTest, EmptyShapesFails) {
  EXPECT_FALSE(
      NearestShapeClassifier::Create({}, dist::Metric::kSed).ok());
}

}  // namespace
}  // namespace privshape
