file(REMOVE_RECURSE
  "CMakeFiles/privshape_net.dir/frame.cc.o"
  "CMakeFiles/privshape_net.dir/frame.cc.o.d"
  "libprivshape_net.a"
  "libprivshape_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privshape_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
