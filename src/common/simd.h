/// \file
/// PS_SIMD dispatch: the one place that decides which vector width the
/// hot-path kernels compile to. Consumers (the SoA distance kernels in
/// `src/distance/candidate_table.cc`, the batched LDP bit fills in
/// `src/ldp`) write their inner loops once against `simd::VecD` /
/// `simd::LessThanU64` and get the widest instruction set the build
/// allows:
///
///   PS_SIMD_LEVEL 2 — AVX2, 4 double lanes   (needs -march=native /
///                     -mavx2; `PRIVSHAPE_NATIVE=ON` in CMake)
///   PS_SIMD_LEVEL 1 — SSE2/SSE4.2, 2 double lanes (the x86-64
///                     baseline, so default builds vectorize 2-wide)
///   PS_SIMD_LEVEL 0 — scalar (non-x86, or `PRIVSHAPE_SIMD=OFF`, which
///                     defines PRIVSHAPE_SIMD_DISABLED)
///
/// Contract: every lane of every VecD operation performs EXACTLY the
/// scalar IEEE-754 double operation (min/add/sub/|x|/==), so a kernel
/// vectorized *across independent problems* (one candidate per lane)
/// produces bit-identical results at every level. The scalar kernels in
/// `src/distance/distance.cc` remain the always-built reference; the
/// bit-exactness suite (tests/distance_simd_test.cc) and the fuzz
/// differential harness (fuzz/fuzz_candidate_table.cc) enforce the
/// match. None of the inputs here can be NaN (costs are |a-b| of small
/// integers, accumulators are sums of those and +inf), which is what
/// makes min() ordering and |x| bit-masking exact.
///
/// The level is a compile-time constant on purpose: runtime dispatch
/// would put an indirect branch in a loop that runs millions of times
/// per round, and the determinism contract makes every level produce
/// the same bytes anyway, so there is nothing to negotiate at runtime.

#ifndef PRIVSHAPE_COMMON_SIMD_H_
#define PRIVSHAPE_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(PRIVSHAPE_SIMD_DISABLED)
#define PS_SIMD_LEVEL 0
#elif defined(__AVX2__)
#define PS_SIMD_LEVEL 2
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PS_SIMD_LEVEL 1
#else
#define PS_SIMD_LEVEL 0
#endif

#if PS_SIMD_LEVEL >= 1
#include <immintrin.h>
#endif

namespace privshape::simd {

/// The resolved PS_SIMD_LEVEL as a typed constant (0 scalar, 1 SSE2,
/// 2 AVX2) for code that branches on the level without the macro.
inline constexpr int kLevel = PS_SIMD_LEVEL;

/// Human-readable level name, recorded in bench meta so BENCH_*.json
/// runs are never compared across different instruction sets silently.
inline constexpr const char* kLevelName =
#if PS_SIMD_LEVEL == 2
    "avx2";
#elif PS_SIMD_LEVEL == 1
    "sse2";
#else
    "scalar";
#endif

/// One-lane fallback; also the reference semantics every wider type
/// must match lane-for-lane.
struct ScalarD {
  static constexpr size_t kLanes = 1;
  double v;

  static ScalarD Load(const double* p) { return {*p}; }
  void Store(double* p) const { *p = v; }
  static ScalarD Set1(double x) { return {x}; }
  static ScalarD Min(ScalarD a, ScalarD b) { return {a.v < b.v ? a.v : b.v}; }
  static ScalarD Add(ScalarD a, ScalarD b) { return {a.v + b.v}; }
  static ScalarD Sub(ScalarD a, ScalarD b) { return {a.v - b.v}; }
  /// |x| by clearing the sign bit — fabs semantics, exact.
  static ScalarD Abs(ScalarD a) {
    uint64_t bits;
    std::memcpy(&bits, &a.v, sizeof(bits));
    bits &= ~(uint64_t{1} << 63);
    double out;
    std::memcpy(&out, &bits, sizeof(out));
    return {out};
  }
  /// 0.0 where a == b, 1.0 elsewhere (the SED substitution cost).
  static ScalarD NeqCost(ScalarD a, ScalarD b) {
    return {a.v == b.v ? 0.0 : 1.0};
  }
};

#if PS_SIMD_LEVEL >= 1
struct SseD {
  static constexpr size_t kLanes = 2;
  __m128d v;

  static SseD Load(const double* p) { return {_mm_loadu_pd(p)}; }
  void Store(double* p) const { _mm_storeu_pd(p, v); }
  static SseD Set1(double x) { return {_mm_set1_pd(x)}; }
  // _mm_min_pd(a, b) = a < b ? a : b per lane; identical to the scalar
  // `b < a ? b : a` for every non-NaN pair with at most one ±0.0 sign
  // (our values are all >= 0 or +inf).
  static SseD Min(SseD a, SseD b) { return {_mm_min_pd(a.v, b.v)}; }
  static SseD Add(SseD a, SseD b) { return {_mm_add_pd(a.v, b.v)}; }
  static SseD Sub(SseD a, SseD b) { return {_mm_sub_pd(a.v, b.v)}; }
  static SseD Abs(SseD a) {
    return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
  }
  static SseD NeqCost(SseD a, SseD b) {
    return {_mm_andnot_pd(_mm_cmpeq_pd(a.v, b.v), _mm_set1_pd(1.0))};
  }
};
#endif

#if PS_SIMD_LEVEL >= 2
struct AvxD {
  static constexpr size_t kLanes = 4;
  __m256d v;

  static AvxD Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
  static AvxD Set1(double x) { return {_mm256_set1_pd(x)}; }
  static AvxD Min(AvxD a, AvxD b) { return {_mm256_min_pd(a.v, b.v)}; }
  static AvxD Add(AvxD a, AvxD b) { return {_mm256_add_pd(a.v, b.v)}; }
  static AvxD Sub(AvxD a, AvxD b) { return {_mm256_sub_pd(a.v, b.v)}; }
  static AvxD Abs(AvxD a) {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  static AvxD NeqCost(AvxD a, AvxD b) {
    return {_mm256_andnot_pd(_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ),
                             _mm256_set1_pd(1.0))};
  }
};
#endif

/// The widest vector the build allows — what the kernels instantiate.
#if PS_SIMD_LEVEL == 2
using VecD = AvxD;
#elif PS_SIMD_LEVEL == 1
using VecD = SseD;
#else
using VecD = ScalarD;
#endif

/// Doubles processed per VecD operation (= candidates per DP sweep in
/// the SoA kernels, and the padding granularity of CandidateTable).
inline constexpr size_t kDoubleLanes = VecD::kLanes;

/// out[i] = (in[i] < threshold) for i in [0, n) — the batched Bernoulli
/// threshold compare over a block of raw u64 engine outputs (the OUE
/// bit fill). Unsigned compare has no direct AVX2 instruction, so the
/// vector path flips the sign bit of both sides and uses the signed
/// 64-bit greater-than; the scalar tail/fallback is branchless (setb).
inline void LessThanU64(const uint64_t* in, size_t n, uint64_t threshold,
                        uint8_t* out) {
  size_t i = 0;
#if PS_SIMD_LEVEL == 2
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(uint64_t{1} << 63));
  const __m256i biased_t = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(threshold)), sign);
  for (; i + 4 <= n; i += 4) {
    __m256i u = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    __m256i lt = _mm256_cmpgt_epi64(biased_t, _mm256_xor_si256(u, sign));
    // One byte per lane: the mask lanes are all-ones (or all-zero), so
    // the low byte of each 64-bit lane is the 0/1 answer after & 1.
    out[i + 0] = static_cast<uint8_t>(_mm256_extract_epi64(lt, 0) & 1);
    out[i + 1] = static_cast<uint8_t>(_mm256_extract_epi64(lt, 1) & 1);
    out[i + 2] = static_cast<uint8_t>(_mm256_extract_epi64(lt, 2) & 1);
    out[i + 3] = static_cast<uint8_t>(_mm256_extract_epi64(lt, 3) & 1);
  }
#endif
  for (; i < n; ++i) out[i] = in[i] < threshold ? 1 : 0;
}

}  // namespace privshape::simd

#endif  // PRIVSHAPE_COMMON_SIMD_H_
