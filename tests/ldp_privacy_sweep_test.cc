// Empirical eps-LDP verification sweeps: for each oracle and budget, the
// worst-case likelihood ratio between any two inputs producing the same
// output must stay within e^eps. These complement the closed-form checks
// in the per-oracle tests by exercising the actual sampling paths.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "ldp/grr.h"
#include "ldp/numeric.h"
#include "ldp/unary_encoding.h"

namespace privshape {
namespace {

struct SweepParam {
  double epsilon;
  size_t domain;
};

class GrrEmpiricalTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GrrEmpiricalTest, EmpiricalTransitionRatioWithinBudget) {
  auto [eps, d] = GetParam();
  auto grr = ldp::Grr::Create(d, eps);
  ASSERT_TRUE(grr.ok());
  const int n = 40000;
  // Empirical output distribution for inputs 0 and 1.
  std::vector<double> out0(d, 0.0), out1(d, 0.0);
  Rng rng(301);
  for (int i = 0; i < n; ++i) {
    out0[grr->PerturbValue(0, &rng)] += 1.0;
    out1[grr->PerturbValue(1, &rng)] += 1.0;
  }
  for (size_t y = 0; y < d; ++y) {
    if (out0[y] < 50 || out1[y] < 50) continue;  // skip noisy cells
    double ratio = out0[y] / out1[y];
    // Allow sampling slack on top of e^eps.
    EXPECT_LE(ratio, std::exp(eps) * 1.25)
        << "eps=" << eps << " d=" << d << " y=" << y;
    EXPECT_GE(ratio, std::exp(-eps) / 1.25);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GrrEmpiricalTest,
    ::testing::Values(SweepParam{0.5, 2}, SweepParam{0.5, 8},
                      SweepParam{1.0, 4}, SweepParam{2.0, 4},
                      SweepParam{2.0, 16}, SweepParam{4.0, 8}));

class UnaryEmpiricalTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(UnaryEmpiricalTest, PerBitRatioWithinBudget) {
  auto [eps, variant_idx] = GetParam();
  auto variant = variant_idx == 0 ? ldp::UnaryEncoding::Variant::kOptimized
                                  : ldp::UnaryEncoding::Variant::kSymmetric;
  auto ue = ldp::UnaryEncoding::Create(6, eps, variant);
  ASSERT_TRUE(ue.ok());
  const int n = 30000;
  Rng rng(302);
  // Inputs 0 and 1 differ in exactly bits 0 and 1; worst-case likelihood
  // ratio for any single report is p(1-q)/(q(1-p)) and must be <= e^eps.
  // Measure the per-bit marginals empirically.
  std::vector<double> ones0(6, 0.0), ones1(6, 0.0);
  for (int i = 0; i < n; ++i) {
    auto b0 = ue->PerturbValue(0, &rng);
    auto b1 = ue->PerturbValue(1, &rng);
    for (size_t j = 0; j < 6; ++j) {
      ones0[j] += b0[j];
      ones1[j] += b1[j];
    }
  }
  // The joint worst case multiplies the two differing bits' ratios.
  double p0 = ones0[0] / n, p1 = ones1[0] / n;
  double q0 = 1.0 - ones0[1] / n, q1 = 1.0 - ones1[1] / n;
  double worst = (p0 / p1) * (q0 / q1);
  EXPECT_LE(worst, std::exp(eps) * 1.2) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Grid, UnaryEmpiricalTest,
                         ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                                            ::testing::Values(0, 1)));

class PiecewiseEmpiricalTest : public ::testing::TestWithParam<double> {};

TEST_P(PiecewiseEmpiricalTest, HistogramDensityRatioWithinBudget) {
  double eps = GetParam();
  auto pm = ldp::PiecewiseMechanism::Create(eps);
  ASSERT_TRUE(pm.ok());
  const int n = 200000;
  const int bins = 24;
  double c = pm->output_bound();
  auto histogram = [&](double v, uint64_t seed) {
    std::vector<double> h(bins, 0.0);
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      double out = pm->Perturb(v, &rng);
      int b = static_cast<int>((out + c) / (2.0 * c) * bins);
      b = std::min(std::max(b, 0), bins - 1);
      h[static_cast<size_t>(b)] += 1.0;
    }
    return h;
  };
  auto h0 = histogram(-0.8, 303);
  auto h1 = histogram(0.8, 304);
  for (int b = 0; b < bins; ++b) {
    if (h0[static_cast<size_t>(b)] < 200 || h1[static_cast<size_t>(b)] < 200)
      continue;
    double ratio = h0[static_cast<size_t>(b)] / h1[static_cast<size_t>(b)];
    // Bins straddling a band edge mix densities; allow generous slack but
    // still catch order-of-magnitude violations.
    EXPECT_LE(ratio, std::exp(eps) * 1.6) << "eps=" << eps << " bin=" << b;
    EXPECT_GE(ratio, std::exp(-eps) / 1.6);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, PiecewiseEmpiricalTest,
                         ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
}  // namespace privshape
