"""Check: telemetry/layering purity.

Two ownership contracts from the telemetry PR (documented in
docs/ARCHITECTURE.md and docs/OBSERVABILITY.md), made machine-checked:

  * Relaxed atomics live in src/telemetry only. The telemetry layer's
    record-path cost contract is "one relaxed fetch_add"; everywhere
    else, an explicit std::memory_order_relaxed is either a data-race
    patch hiding a missing lock or an unannounced perf contract —
    both need a justified suppression, not a silent pass.

  * src/common stays telemetry-free. common is the bottom of the DAG;
    the one sanctioned bridge is the raw std::atomic<int64_t>* gauge
    mirror (Gauge::raw()), so any telemetry include or telemetry::
    reference in common is an inversion the layering lint's
    include-edge view can only partially see.
"""

from .. import ir

CHECK_ID = "psa-purity"
DESCRIPTION = ("relaxed atomics stay inside src/telemetry and "
               "src/common stays telemetry-free")

ATOMIC_HOME = "telemetry"
TELEMETRY_FREE = "common"


def run(files, registry):
    findings = []
    for src in files:
        module = src.module
        if module is None:
            continue
        if module != ATOMIC_HOME:
            for tok in src.tokens:
                if tok.kind == ir.IDENT and \
                        tok.text == "memory_order_relaxed":
                    findings.append(ir.Finding(
                        CHECK_ID, src.path, tok.line,
                        "std::memory_order_relaxed outside src/telemetry "
                        "— document the ownership contract via a "
                        "justified suppression or use the default "
                        "ordering"))
        if module == TELEMETRY_FREE:
            for line, inc in src.includes:
                if inc.startswith("telemetry/"):
                    findings.append(ir.Finding(
                        CHECK_ID, src.path, line,
                        f'src/common must stay telemetry-free — remove '
                        f'#include "{inc}" (bridge through '
                        "Gauge::raw() instead)"))
            for i, tok in enumerate(src.tokens):
                if (tok.kind == ir.IDENT and tok.text == "telemetry"
                        and i + 1 < len(src.tokens)
                        and src.tokens[i + 1].text == "::"):
                    findings.append(ir.Finding(
                        CHECK_ID, src.path, tok.line,
                        "src/common references telemetry:: — common is "
                        "the bottom of the module DAG"))
    return findings
