// Speech essential shapes (the paper's Example II and Fig. 1).
//
// Two speakers pronounce the same word at different speeds: the frequency
// feature series differ in length but share an essential shape. This
// example shows, without any privacy machinery, why Compressive SAX is the
// right front end — both recordings collapse to the same symbolic shape —
// and then runs PrivShape over a mixed-speed population to recover the
// shared shapes privately.
//
// Run: ./build/examples/speech_shapes

#include <cmath>
#include <iostream>

#include "core/pipeline.h"
#include "core/privshape.h"
#include "series/generators.h"
#include "series/sequence.h"

namespace {

/// A synthetic "formant contour" for one utterance: rise, plateau, fall —
/// stretched by `speed` (slower speakers produce longer recordings).
std::vector<double> Utterance(double speed, double noise, privshape::Rng* rng) {
  size_t length = static_cast<size_t>(240.0 / speed);
  std::vector<double> v(length);
  for (size_t i = 0; i < length; ++i) {
    double x = static_cast<double>(i) / static_cast<double>(length - 1);
    double y;
    if (x < 0.3) {
      y = x / 0.3;                     // rising onset
    } else if (x < 0.6) {
      y = 1.0;                         // vowel plateau
    } else {
      y = (1.0 - x) / 0.4;             // falling offset
    }
    v[i] = y + rng->Gaussian(0.0, noise);
  }
  return v;
}

}  // namespace

/// Transform with a fixed segment *count* (20): the segment length scales
/// with the recording so fast and slow speakers compare at the same
/// granularity, exactly like resampling utterances to a common frame rate.
privshape::Result<privshape::Sequence> TransformUtterance(
    const std::vector<double>& values) {
  privshape::core::TransformOptions transform;
  transform.t = 4;
  transform.w = std::max<int>(1, static_cast<int>(values.size() / 20));
  return privshape::core::TransformSeries(values, transform);
}

int main() {
  using namespace privshape;
  Rng rng(99);

  // --- Part 1: speed invariance of the essential shape. -----------------
  auto fast = Utterance(/*speed=*/1.6, /*noise=*/0.0, &rng);
  auto slow = Utterance(/*speed=*/0.8, /*noise=*/0.0, &rng);
  auto fast_word = TransformUtterance(fast);
  auto slow_word = TransformUtterance(slow);
  std::cout << "fast speaker (" << fast.size() << " samples): \""
            << SequenceToString(*fast_word) << "\"\n";
  std::cout << "slow speaker (" << slow.size() << " samples): \""
            << SequenceToString(*slow_word) << "\"\n";
  std::cout << (*fast_word == *slow_word
                    ? "-> identical essential shapes after Compressive SAX\n"
                    : "-> shapes differ (granularity artifact)\n");

  // --- Part 2: private extraction over a mixed-speed population. --------
  const size_t kUsers = 1500;
  std::vector<Sequence> sequences;
  sequences.reserve(kUsers);
  for (size_t i = 0; i < kUsers; ++i) {
    double speed = rng.Uniform(0.7, 1.8);  // every user talks differently
    auto series = Utterance(speed, /*noise=*/0.08, &rng);
    auto word = TransformUtterance(series);
    if (word.ok()) sequences.push_back(std::move(*word));
  }

  core::MechanismConfig config;
  config.epsilon = 4.0;
  config.t = 4;
  config.k = 2;
  config.c = 3;
  config.metric = dist::Metric::kSed;
  config.seed = 99;
  core::PrivShape mechanism(config);
  auto result = mechanism.Run(sequences);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "\nprivately extracted shapes from " << kUsers
            << " mixed-speed utterances (eps=4):\n";
  for (const auto& shape : result->shapes) {
    std::cout << "  \"" << SequenceToString(shape.shape)
              << "\"  estimated count: " << shape.frequency << "\n";
  }
  std::cout << "the dominant shape should match the clean essential shape "
               "above.\n";
  return 0;
}
