#include "ldp/olh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace privshape {
namespace {

using ldp::Olh;

TEST(OlhTest, RejectsInvalidParameters) {
  EXPECT_FALSE(Olh::Create(1, 1.0).ok());
  EXPECT_FALSE(Olh::Create(10, 0.0).ok());
  EXPECT_TRUE(Olh::Create(100, 1.0).ok());
}

TEST(OlhTest, BucketCountIsFloorExpEpsPlusOne) {
  auto olh = Olh::Create(1000, 1.0);
  ASSERT_TRUE(olh.ok());
  EXPECT_EQ(olh->num_buckets(),
            static_cast<size_t>(std::floor(std::exp(1.0))) + 1);
}

TEST(OlhTest, HashIsDeterministicAndInRange) {
  auto olh = Olh::Create(50, 1.0);
  ASSERT_TRUE(olh.ok());
  for (size_t v = 0; v < 50; ++v) {
    size_t h1 = olh->HashToBucket(v, 12345);
    size_t h2 = olh->HashToBucket(v, 12345);
    EXPECT_EQ(h1, h2);
    EXPECT_LT(h1, olh->num_buckets());
  }
}

TEST(OlhTest, HashSpreadsAcrossBuckets) {
  auto olh = Olh::Create(1000, 2.0);
  ASSERT_TRUE(olh.ok());
  std::vector<int> hits(olh->num_buckets(), 0);
  for (size_t v = 0; v < 1000; ++v) {
    hits[olh->HashToBucket(v, 777)]++;
  }
  // Every bucket should receive a reasonable share.
  double expected = 1000.0 / static_cast<double>(olh->num_buckets());
  for (int h : hits) {
    EXPECT_GT(h, expected * 0.5);
    EXPECT_LT(h, expected * 1.5);
  }
}

TEST(OlhTest, PerturbReportsStayInBucketRange) {
  auto olh = Olh::Create(30, 1.0);
  ASSERT_TRUE(olh.ok());
  Rng rng(51);
  for (int i = 0; i < 500; ++i) {
    auto [seed, report] = olh->PerturbValue(static_cast<size_t>(i % 30), &rng);
    (void)seed;
    EXPECT_LT(report, olh->num_buckets());
  }
}

TEST(OlhTest, EstimatesAreUnbiased) {
  auto olh = Olh::Create(20, 1.5);
  ASSERT_TRUE(olh.ok());
  Rng rng(52);
  const int n = 60000;
  // Point-heavy distribution over a modest domain.
  std::vector<double> truth(20, 0.02);
  truth[3] = 0.35;
  truth[7] = 0.27;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(olh->SubmitUser(rng.Discrete(truth), &rng).ok());
  }
  auto counts = olh->EstimateCounts();
  EXPECT_NEAR(counts[3] / n, truth[3], 0.03);
  EXPECT_NEAR(counts[7] / n, truth[7], 0.03);
  EXPECT_NEAR(counts[0] / n, truth[0], 0.03);
}

TEST(OlhTest, SubmitRejectsOutOfDomain) {
  auto olh = Olh::Create(5, 1.0);
  ASSERT_TRUE(olh.ok());
  Rng rng(53);
  EXPECT_FALSE(olh->SubmitUser(5, &rng).ok());
  EXPECT_TRUE(olh->SubmitUser(4, &rng).ok());
}

TEST(OlhTest, ResetClearsReports) {
  auto olh = Olh::Create(5, 1.0);
  ASSERT_TRUE(olh.ok());
  Rng rng(54);
  ASSERT_TRUE(olh->SubmitUser(0, &rng).ok());
  EXPECT_EQ(olh->num_reports(), 1u);
  olh->Reset();
  EXPECT_EQ(olh->num_reports(), 0u);
}

}  // namespace
}  // namespace privshape
