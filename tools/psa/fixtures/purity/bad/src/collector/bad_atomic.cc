// Fixture: a relaxed atomic outside src/telemetry — either a hidden
// perf contract or a race patch; both need a justified suppression.
#include <atomic>

namespace privshape::collector {

void BumpRelaxed(std::atomic<uint64_t>* counter) {
  counter->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace privshape::collector
