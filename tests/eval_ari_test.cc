#include "eval/ari.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace privshape {
namespace {

using eval::Accuracy;
using eval::AdjustedRandIndex;

TEST(AriTest, IdenticalPartitionsScoreOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  auto ari = AdjustedRandIndex(a, a);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AriTest, RelabeledPartitionStillScoresOne) {
  // ARI is invariant to label permutation.
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  std::vector<int> b = {5, 5, 9, 9, 7, 7};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AriTest, IndependentRandomPartitionsScoreNearZero) {
  Rng rng(131);
  std::vector<int> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(static_cast<int>(rng.Index(4)));
    b.push_back(static_cast<int>(rng.Index(4)));
  }
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.0, 0.02);
}

TEST(AriTest, SklearnReferenceValue) {
  // sklearn.metrics.adjusted_rand_score([0,0,1,1],[0,0,1,2]) = 0.5714...
  std::vector<int> a = {0, 0, 1, 1};
  std::vector<int> b = {0, 0, 1, 2};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.5714285714, 1e-9);
}

TEST(AriTest, DisagreementCanGoNegative) {
  // Partitions that disagree more than chance can dip below zero.
  std::vector<int> a = {0, 0, 1, 1};
  std::vector<int> b = {0, 1, 0, 1};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_LT(*ari, 0.01);
}

TEST(AriTest, TrivialPartitionsDefined) {
  std::vector<int> all_same = {1, 1, 1, 1};
  auto ari = AdjustedRandIndex(all_same, all_same);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AriTest, RejectsMismatchedOrEmpty) {
  EXPECT_FALSE(AdjustedRandIndex({1, 2}, {1}).ok());
  EXPECT_FALSE(AdjustedRandIndex({}, {}).ok());
}

TEST(AccuracyTest, CountsMatches) {
  auto acc = Accuracy({0, 1, 2, 0}, {0, 1, 1, 0});
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 0.75);
}

TEST(AccuracyTest, PerfectAndZero) {
  EXPECT_DOUBLE_EQ(*Accuracy({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(*Accuracy({1, 1}, {0, 0}), 0.0);
}

TEST(AccuracyTest, RejectsMismatchedOrEmpty) {
  EXPECT_FALSE(Accuracy({1}, {1, 2}).ok());
  EXPECT_FALSE(Accuracy({}, {}).ok());
}

}  // namespace
}  // namespace privshape
