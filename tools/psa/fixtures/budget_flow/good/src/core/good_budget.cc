// Fixture: the clean twin — every epsilon is a traced expression
// (config field, parameter, or arithmetic split of one).
#include "ldp/exponential.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"

namespace privshape::core {

struct BudgetedConfig {
  double epsilon = 0.0;
};

void GoodTracedEpsilons(size_t domain, const BudgetedConfig& config,
                        double epsilon) {
  auto grr = ldp::Grr::Create(domain, config.epsilon);
  auto em = ldp::ExponentialMechanism::Create(epsilon);
  // Splitting a traced budget with literal factors stays traced.
  auto oue = ldp::UnaryEncoding::Create(
      domain, config.epsilon / 2.0,
      ldp::UnaryEncoding::Variant::kOptimized);
  (void)grr;
  (void)em;
  (void)oue;
}

}  // namespace privshape::core
