// Table IV: quantitative measures of extracted shapes on the Trace dataset
// (classification task, eps = 4, t = 4, w = 10). Rows: PatternLDP,
// Baseline, PrivShape; columns: DTW, SED, Euclidean, Accuracy.

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 3000, 3);
  double epsilon = args.GetDouble("epsilon", 4.0);

  pb::PrintTitle("Table IV: Quantitative measures of shapes (Trace), eps=" +
                 privshape::FormatDouble(epsilon));
  pb::PrintHeader({"Mechanism", "DTW", "SED", "Euclidean", "Accuracy"});
  auto csv = pb::MaybeCsv("table4_trace_quality");
  if (csv) {
    csv->WriteHeader({"mechanism", "dtw", "sed", "euclidean", "accuracy"});
  }

  pb::ClassificationOutcome pattern_sum, baseline_sum, privshape_sum;
  for (int trial = 0; trial < scale.trials; ++trial) {
    uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
    privshape::series::GeneratorOptions gen;
    gen.num_instances = scale.users;
    gen.seed = seed;
    auto dataset = privshape::series::MakeTraceDataset(gen);
    privshape::series::Dataset train, test;
    privshape::series::TrainTestSplit(dataset, 0.8, seed, &train, &test);
    auto transform = pb::TraceTransform();

    pb::PatternLdpBenchOptions pl;
    pl.epsilon = epsilon;
    pl.seed = seed;
    auto pattern = pb::RunPatternLdpRfClassification(train, test, pl, 3);

    auto config = pb::TraceConfig(epsilon, seed);
    privshape::core::MechanismConfig baseline_config = config;
    baseline_config.baseline_threshold =
        100.0 * static_cast<double>(scale.users) / 40000.0;
    auto baseline =
        pb::RunBaselineClassification(train, test, transform,
                                      baseline_config);
    privshape::core::MechanismConfig ps_config = config;
    ps_config.num_classes = 3;
    auto priv =
        pb::RunPrivShapeClassification(train, test, transform, ps_config);

    auto acc = [](pb::ClassificationOutcome* sum,
                  const pb::ClassificationOutcome& one) {
      sum->accuracy += one.accuracy;
      sum->quality.dtw += one.quality.dtw;
      sum->quality.sed += one.quality.sed;
      sum->quality.euclidean += one.quality.euclidean;
    };
    acc(&pattern_sum, pattern);
    acc(&baseline_sum, baseline);
    acc(&privshape_sum, priv);
  }

  double n = scale.trials;
  auto emit = [&](const std::string& name,
                  const pb::ClassificationOutcome& sum, bool has_quality) {
    std::vector<std::string> row = {
        name,
        has_quality ? privshape::FormatDouble(sum.quality.dtw / n, 4) : "-",
        has_quality ? privshape::FormatDouble(sum.quality.sed / n, 4) : "-",
        has_quality ? privshape::FormatDouble(sum.quality.euclidean / n, 4)
                    : "-",
        privshape::FormatDouble(sum.accuracy / n, 4)};
    pb::PrintRow(row);
    if (csv) csv->WriteRow(row);
  };
  // PatternLDP+RF has no symbolic shapes of its own in this pipeline; the
  // paper derives its Table IV distances from KShape centers, which the
  // fig10 bench prints. Accuracy is the comparable column here.
  emit("PatternLDP", pattern_sum, false);
  emit("Baseline", baseline_sum, true);
  emit("PrivShape", privshape_sum, true);

  std::cout << "\nPaper reference (Table IV): PatternLDP 17.42/7.70/6.70/"
               "0.18; Baseline 12.06/3.34/5.90/0.85; PrivShape "
               "12.06/2.67/4.89/0.87.\nExpected shape: PrivShape >= Baseline "
               ">> PatternLDP on accuracy.\n";
  return 0;
}
