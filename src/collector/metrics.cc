#include "collector/metrics.h"

#include <fstream>

namespace privshape::collector {

double RoundStats::IngestedPerSec() const {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(accepted + rejected) / seconds;
}

double RoundStats::AcceptedPerSec() const {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(accepted) / seconds;
}

size_t CollectorMetrics::TotalReports() const {
  size_t total = 0;
  for (const RoundStats& round : rounds) {
    total += round.accepted + round.rejected;
  }
  return total;
}

size_t CollectorMetrics::TotalAccepted() const {
  size_t total = 0;
  for (const RoundStats& round : rounds) total += round.accepted;
  return total;
}

size_t CollectorMetrics::TotalRejected() const {
  size_t total = 0;
  for (const RoundStats& round : rounds) total += round.rejected;
  return total;
}

size_t CollectorMetrics::TotalBytesUp() const {
  size_t total = 0;
  for (const RoundStats& round : rounds) total += round.bytes_up;
  return total;
}

double CollectorMetrics::TotalIngestedPerSec() const {
  if (total_seconds <= 0.0) return 0.0;
  return static_cast<double>(TotalReports()) / total_seconds;
}

double CollectorMetrics::TotalAcceptedPerSec() const {
  if (total_seconds <= 0.0) return 0.0;
  return static_cast<double>(TotalAccepted()) / total_seconds;
}

JsonValue CollectorMetrics::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("num_users", JsonValue::Uint(num_users));
  doc.Set("num_shards", JsonValue::Uint(num_shards));
  doc.Set("num_threads", JsonValue::Uint(num_threads));
  doc.Set("num_collectors", JsonValue::Uint(num_collectors));
  doc.Set("queue_depth", JsonValue::Uint(queue_depth));
  doc.Set("ingest", JsonValue::Str(ingest));
  doc.Set("total_seconds", JsonValue::Num(total_seconds));
  doc.Set("total_reports", JsonValue::Uint(TotalReports()));
  doc.Set("total_accepted", JsonValue::Uint(TotalAccepted()));
  doc.Set("total_rejected", JsonValue::Uint(TotalRejected()));
  doc.Set("total_bytes_up", JsonValue::Uint(TotalBytesUp()));
  // "ingested" divides accepted + rejected by wall-clock (serving
  // capacity); "accepted" divides only validated reports (useful work).
  // The old "reports_per_sec" key silently meant the former.
  doc.Set("ingested_per_sec", JsonValue::Num(TotalIngestedPerSec()));
  doc.Set("accepted_per_sec", JsonValue::Num(TotalAcceptedPerSec()));
  if (ingest == "socket") {
    doc.Set("connections", JsonValue::Uint(connections));
    doc.Set("disconnects", JsonValue::Uint(disconnects));
    doc.Set("protocol_errors", JsonValue::Uint(protocol_errors));
    doc.Set("stale_batches", JsonValue::Uint(stale_batches));
    doc.Set("deadline_drops", JsonValue::Uint(deadline_drops));
  }
  JsonValue stages = JsonValue::Array();
  for (const RoundStats& round : rounds) {
    JsonValue stage = JsonValue::Object();
    stage.Set("stage", JsonValue::Str(round.stage));
    stage.Set("users", JsonValue::Uint(round.users));
    stage.Set("accepted", JsonValue::Uint(round.accepted));
    stage.Set("rejected", JsonValue::Uint(round.rejected));
    stage.Set("client_errors", JsonValue::Uint(round.client_errors));
    stage.Set("bytes_up", JsonValue::Uint(round.bytes_up));
    stage.Set("bytes_down", JsonValue::Uint(round.bytes_down));
    stage.Set("seconds", JsonValue::Num(round.seconds));
    stage.Set("ingested_per_sec", JsonValue::Num(round.IngestedPerSec()));
    stage.Set("accepted_per_sec", JsonValue::Num(round.AcceptedPerSec()));
    if (round.ingest_batches > 0) {
      JsonValue latency = JsonValue::Object();
      latency.Set("batches", JsonValue::Uint(round.ingest_batches));
      latency.Set("p50_ns", JsonValue::Num(round.ingest_p50_ns));
      latency.Set("p95_ns", JsonValue::Num(round.ingest_p95_ns));
      latency.Set("p99_ns", JsonValue::Num(round.ingest_p99_ns));
      latency.Set("max_ns", JsonValue::Uint(round.ingest_max_ns));
      latency.Set("mean_ns", JsonValue::Num(round.ingest_mean_ns));
      stage.Set("ingest_latency", std::move(latency));
    }
    stages.Push(std::move(stage));
  }
  doc.Set("rounds", std::move(stages));
  return doc;
}

Status CollectorMetrics::WriteJsonFile(const std::string& path) const {
  return collector::WriteJsonFile(ToJson(), path);
}

Status WriteJsonFile(const JsonValue& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open metrics file: " + path);
  }
  out << doc.Dump(2);
  return out.good() ? Status::Ok()
                    : Status::Internal("failed writing metrics: " + path);
}

}  // namespace privshape::collector
