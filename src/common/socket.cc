#include "common/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

namespace privshape {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<UniqueFd> TcpListen(const std::string& host, uint16_t port,
                           int backlog) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int one = 1;
  // Restarting a daemon must not fail on the previous run's TIME_WAIT.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen");
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<UniqueFd> TcpConnect(const std::string& host, uint16_t port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

Result<UniqueFd> TcpAccept(int listen_fd) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return UniqueFd();
    return ErrnoStatus("accept");
  }
  return UniqueFd(fd);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

Status SetRecvTimeout(int fd, double seconds) {
  if (!(seconds > 0.0)) {
    return Status::InvalidArgument("receive timeout must be positive");
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that closed mid-protocol (daemon shutdown,
    // dropped connection) must surface as EPIPE, not kill the process.
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::Ok();
}

Result<size_t> ReadSome(int fd, void* buf, size_t cap) {
  while (true) {
    ssize_t n = ::read(fd, buf, cap);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // On a blocking socket this means SO_RCVTIMEO elapsed.
      return Status::Internal("read timed out");
    }
    return ErrnoStatus("read");
  }
}

Poller::Poller() : epoll_fd_(::epoll_create1(0)) {}

Status Poller::Add(int fd, uint64_t tag, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return ErrnoStatus("epoll_ctl(ADD)");
  }
  return Status::Ok();
}

Status Poller::Modify(int fd, uint64_t tag, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return ErrnoStatus("epoll_ctl(MOD)");
  }
  return Status::Ok();
}

Status Poller::Remove(int fd) {
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return ErrnoStatus("epoll_ctl(DEL)");
  }
  return Status::Ok();
}

Status Poller::Wait(std::vector<PollEvent>* events, int timeout_ms) {
  events->clear();
  epoll_event raw[64];
  int n = ::epoll_wait(epoll_fd_.get(), raw, 64, timeout_ms);
  if (n < 0) {
    // A signal mid-wait is not an error: the caller re-checks its
    // deadline and shutdown flag on the empty return.
    if (errno == EINTR) return Status::Ok();
    return ErrnoStatus("epoll_wait");
  }
  events->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    PollEvent event;
    event.tag = raw[i].data.u64;
    event.readable = (raw[i].events & EPOLLIN) != 0;
    event.writable = (raw[i].events & EPOLLOUT) != 0;
    event.error = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    events->push_back(event);
  }
  return Status::Ok();
}

}  // namespace privshape
