/// \file
/// Module `eval` — non-private downstream evaluation (§V): nearest-shape
/// assignment (Def. 4), clustering baselines (k-means/k-medoids/k-shape/
/// agglomerative), ARI, random-forest and 1-NN classification, and shapelet
/// discovery. Invariant: this layer consumes already-extracted shapes and
/// ground-truth labels; it performs no perturbation and spends no budget.

#ifndef PRIVSHAPE_EVAL_SHAPE_MATCHING_H_
#define PRIVSHAPE_EVAL_SHAPE_MATCHING_H_

#include <vector>

#include "common/status.h"
#include "distance/distance.h"
#include "series/sequence.h"

namespace privshape::eval {

/// A labeled extracted shape used for downstream evaluation.
struct LabeledShape {
  Sequence shape;
  int label = -1;
};

/// Assigns every sequence to its nearest shape (by the metric); returns the
/// shape index per sequence. This realizes Def. 4's matching step and is
/// how the paper turns PrivShape's top-k shapes into cluster assignments
/// for ARI (§V-C).
Result<std::vector<int>> AssignToNearestShape(
    const std::vector<Sequence>& sequences,
    const std::vector<Sequence>& shapes, dist::Metric metric);

/// 1-NN classifier over labeled shapes: a sequence receives the label of
/// its nearest shape (§V-E, "most frequent shapes within each class as the
/// classification criteria").
class NearestShapeClassifier {
 public:
  static Result<NearestShapeClassifier> Create(
      std::vector<LabeledShape> shapes, dist::Metric metric);

  int Classify(const Sequence& sequence) const;
  std::vector<int> ClassifyBatch(
      const std::vector<Sequence>& sequences) const;

  const std::vector<LabeledShape>& shapes() const { return shapes_; }

 private:
  NearestShapeClassifier(std::vector<LabeledShape> shapes,
                         std::unique_ptr<dist::SequenceDistance> distance)
      : shapes_(std::move(shapes)), distance_(std::move(distance)) {}

  std::vector<LabeledShape> shapes_;
  std::unique_ptr<dist::SequenceDistance> distance_;
};

}  // namespace privshape::eval

#endif  // PRIVSHAPE_EVAL_SHAPE_MATCHING_H_
