// Device-state classification (the paper's Trace workload) — served over
// the wire.
//
// A fleet of monitoring devices reports transient signatures: level
// shifts, overshooting ramps, damped oscillations. Labels are sensitive
// too, so PrivShape's classification variant reports (shape, label) cells
// through OUE inside the refinement round (P_e). This example runs the
// full protocol through the multi-threaded collector — every training
// user is a wire-level ClientSession whose only emission is one encoded,
// perturbed report — and checks the served result byte-for-byte against
// the in-process core::PrivShapeLabeledShapes reference. The extracted
// labeled shapes then classify a held-out test set by nearest
// string-edit distance.
//
// Run: ./build/examples/device_classification [--users=3000] [--epsilon=4]

#include <iostream>

#include "collector/client_fleet.h"
#include "collector/multi_collector.h"
#include "common/cli.h"
#include "common/thread_pool.h"
#include "core/classification.h"
#include "core/pipeline.h"
#include "core/privshape.h"
#include "eval/ari.h"
#include "eval/shape_matching.h"
#include "series/generators.h"
#include "series/time_series.h"

int main(int argc, char** argv) {
  using namespace privshape;
  CliArgs args(argc, argv);
  size_t users = static_cast<size_t>(args.GetInt("users", 3000));
  double epsilon = args.GetDouble("epsilon", 4.0);

  series::GeneratorOptions gen;
  gen.num_instances = users;
  gen.seed = 7;
  series::Dataset dataset = series::MakeTraceDataset(gen);
  series::Dataset train, test;
  series::TrainTestSplit(dataset, 0.8, 7, &train, &test);
  std::cout << train.size() << " training users, " << test.size()
            << " test instances, 3 transient classes\n";

  core::TransformOptions transform;
  transform.t = 4;
  transform.w = 10;
  auto train_seqs = core::TransformDataset(train, transform);
  auto test_seqs = core::TransformDataset(test, transform);
  if (!train_seqs.ok() || !test_seqs.ok()) {
    std::cerr << "transform failed\n";
    return 1;
  }

  core::MechanismConfig config;
  config.epsilon = epsilon;
  config.t = 4;
  config.k = 3;
  config.c = 3;
  config.metric = dist::Metric::kSed;
  config.num_classes = 3;  // enables the OUE candidate x class P_e round
  config.seed = 7;

  std::vector<int> train_labels;
  for (const auto& inst : train.instances) {
    train_labels.push_back(inst.label);
  }

  // 1) Serve the protocol over the wire: the labeled fleet wraps each
  //    training user's (word, label) into a lazily materialized
  //    ClientSession; two merged collection sites run the rounds on a
  //    shared pool. Labels are only ever read inside each session's local
  //    OUE encoding — the collector sees noisy bit vectors.
  collector::ClientFleet fleet = collector::ClientFleet::FromWords(
      *train_seqs, train_seqs->size(), config.metric, config.seed,
      train_labels);
  ThreadPool pool(ThreadsFromArgs(args, 4));
  collector::MultiCollector sites(config, {}, &pool, /*num_collectors=*/2);
  auto served = sites.Collect(fleet);
  if (!served.ok()) {
    std::cerr << served.status() << "\n";
    return 1;
  }

  std::cout << "\nextracted classification criteria (eps=" << epsilon
            << ", served over the wire):\n";
  std::vector<eval::LabeledShape> shapes;
  for (const auto& shape : served->shapes) {
    shapes.push_back({shape.shape, shape.label});
    std::cout << "  class " << shape.label << " <- \""
              << SequenceToString(shape.shape) << "\"\n";
  }

  // 2) The determinism contract, classification edition: the in-process
  //    reference on the same words and labels emits identical criteria.
  core::PrivShape mechanism(config);
  auto reference =
      core::PrivShapeLabeledShapes(mechanism, *train_seqs, train_labels);
  if (!reference.ok()) {
    std::cerr << reference.status() << "\n";
    return 1;
  }
  bool match = reference->size() == shapes.size();
  for (size_t i = 0; match && i < shapes.size(); ++i) {
    match = (*reference)[i].shape == shapes[i].shape &&
            (*reference)[i].label == shapes[i].label;
  }
  std::cout << "collector == core::PrivShapeLabeledShapes: "
            << (match ? "yes (byte-identical)" : "NO — bug!") << "\n";
  if (!match) return 1;

  auto classifier =
      eval::NearestShapeClassifier::Create(shapes, dist::Metric::kSed);
  std::vector<int> truth;
  for (const auto& inst : test.instances) truth.push_back(inst.label);
  auto predictions = classifier->ClassifyBatch(*test_seqs);
  auto accuracy = eval::Accuracy(truth, predictions);
  std::cout << "\nheld-out classification accuracy: " << *accuracy << "\n";
  std::cout << "every training label was only read inside its owner's "
               "local OUE encoding; the collector saw noisy bit vectors.\n";
  return 0;
}
