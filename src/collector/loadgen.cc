#include "collector/loadgen.h"

#include <algorithm>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/socket.h"
#include "net/frame.h"
#include "protocol/round_context.h"
#include "protocol/session.h"

namespace privshape::collector {

namespace {

/// What one connection thread produced.
struct ConnOutcome {
  net::CompleteMsg complete;
  size_t rounds = 0;
  size_t reports_sent = 0;
  size_t client_errors = 0;
  size_t bytes_up = 0;
  size_t bytes_down = 0;
};

/// Blocks until the next whole frame arrives (reads bounded by the
/// socket's SO_RCVTIMEO). A server-sent Error frame is surfaced as the
/// daemon's message, not as a framing failure.
Result<net::Frame> ReadFrame(int fd, net::FrameReader* reader,
                             size_t* bytes_down) {
  char buf[64 * 1024];
  while (true) {
    net::Frame frame;
    auto next = reader->Next(&frame);
    if (!next.ok()) return next.status();
    if (*next) {
      if (frame.type == net::MsgType::kError) {
        auto message = net::DecodeError(frame.payload);
        return Status::Internal(
            "server error: " +
            (message.ok() ? *message : message.status().message()));
      }
      return frame;
    }
    auto read = ReadSome(fd, buf, sizeof(buf));
    if (!read.ok()) return read.status();
    if (*read == 0) {
      return Status::Internal("server closed the connection");
    }
    *bytes_down += *read;
    reader->Append(std::string_view(buf, *read));
  }
}

Status SendFrame(int fd, net::MsgType type, std::string_view body,
                 size_t* bytes_up) {
  std::string frame;
  net::AppendFrame(type, body, &frame);
  *bytes_up += frame.size();
  return WriteAll(fd, frame);
}

/// Decodes a round's broadcast request into the shared RoundContext every
/// assigned user answers against — the same pre-decode the in-process
/// coordinator does once per round.
Result<proto::RoundContext> ContextFor(const net::RoundBeginMsg& msg,
                                       dist::Metric metric) {
  switch (msg.kind) {
    case proto::ReportKind::kLength: {
      auto request = proto::DecodeLengthRequest(msg.request);
      if (!request.ok()) return request.status();
      return proto::RoundContext::Length(*request);
    }
    case proto::ReportKind::kSubShape: {
      auto request = proto::DecodeSubShapeRequest(msg.request);
      if (!request.ok()) return request.status();
      return proto::RoundContext::SubShape(*request);
    }
    case proto::ReportKind::kSelection:
      return proto::RoundContext::Selection(msg.request, metric);
    case proto::ReportKind::kRefinement:
      return proto::RoundContext::Refinement(msg.request, metric);
    case proto::ReportKind::kClassRefine:
      return proto::RoundContext::ClassRefinement(msg.request, metric);
  }
  return Status::InvalidArgument("unknown round kind");
}

/// One connection's whole lifecycle: handshake, rounds, Complete.
Result<ConnOutcome> RunConnection(const ClientFleet& fleet,
                                  const LoadgenOptions& options) {
  auto connected = TcpConnect(options.host, options.port);
  if (!connected.ok()) return connected.status();
  UniqueFd fd = std::move(*connected);
  PRIVSHAPE_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  PRIVSHAPE_RETURN_IF_ERROR(
      SetRecvTimeout(fd.get(), options.timeout_seconds));

  ConnOutcome outcome;
  net::FrameReader reader;

  net::HelloMsg hello;
  hello.fleet_users = fleet.num_users();
  PRIVSHAPE_RETURN_IF_ERROR(SendFrame(fd.get(), net::MsgType::kHello,
                                      net::EncodeHello(hello),
                                      &outcome.bytes_up));
  auto welcome_frame = ReadFrame(fd.get(), &reader, &outcome.bytes_down);
  if (!welcome_frame.ok()) return welcome_frame.status();
  if (welcome_frame->type != net::MsgType::kWelcome) {
    return Status::Internal("expected Welcome, got frame type " +
                            std::to_string(static_cast<uint64_t>(
                                welcome_frame->type)));
  }
  auto welcome = net::DecodeWelcome(welcome_frame->payload);
  if (!welcome.ok()) return welcome.status();
  // The handshake echo is the last line of defense of the determinism
  // contract: a daemon configured for a different fleet must fail here,
  // not produce silently different shapes.
  if (welcome->version != net::kNetVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: daemon speaks v" +
        std::to_string(welcome->version));
  }
  if (welcome->num_users != fleet.num_users()) {
    return Status::FailedPrecondition(
        "daemon runs " + std::to_string(welcome->num_users) +
        " users, fleet has " + std::to_string(fleet.num_users()));
  }
  if (welcome->seed != fleet.seed()) {
    return Status::FailedPrecondition(
        "daemon seed " + std::to_string(welcome->seed) +
        " != fleet seed " + std::to_string(fleet.seed()));
  }
  if (welcome->num_classes > 0 && !fleet.labeled()) {
    return Status::FailedPrecondition(
        "daemon serves classification (num_classes=" +
        std::to_string(welcome->num_classes) + ") but the fleet is unlabeled");
  }

  size_t batch_size = options.batch_size > 0 ? options.batch_size : 1;
  while (true) {
    auto frame = ReadFrame(fd.get(), &reader, &outcome.bytes_down);
    if (!frame.ok()) return frame.status();
    if (frame->type == net::MsgType::kComplete) {
      auto complete = net::DecodeComplete(frame->payload);
      if (!complete.ok()) return complete.status();
      outcome.complete = std::move(*complete);
      return outcome;
    }
    if (frame->type != net::MsgType::kRoundBegin) {
      return Status::Internal(
          "expected RoundBegin or Complete, got frame type " +
          std::to_string(static_cast<uint64_t>(frame->type)));
    }
    auto round = net::DecodeRoundBegin(frame->payload);
    if (!round.ok()) return round.status();
    auto ctx = ContextFor(*round, fleet.metric());
    if (!ctx.ok()) return ctx.status();

    // Same zero-allocation answer path as the in-process stripes: one
    // scratch and one flat batch buffer reused across the assignment.
    proto::AnswerScratch scratch;
    proto::ReportBatch batch;
    batch.Reserve(batch_size);
    size_t errors = 0;
    for (uint64_t user : round->users) {
      if (user >= fleet.num_users()) {
        return Status::Internal("assigned out-of-range user " +
                                std::to_string(user));
      }
      proto::ClientSession session =
          fleet.MakeSession(static_cast<size_t>(user));
      Status answered = session.AnswerTo(*ctx, &scratch, &batch);
      if (!answered.ok()) {
        ++errors;
        continue;
      }
      if (batch.size() >= batch_size) {
        outcome.reports_sent += batch.size();
        PRIVSHAPE_RETURN_IF_ERROR(
            SendFrame(fd.get(), net::MsgType::kBatchUpload,
                      net::EncodeBatchUpload(round->round_id, batch),
                      &outcome.bytes_up));
        batch = proto::ReportBatch();
        batch.Reserve(batch_size);
      }
    }
    if (!batch.empty()) {
      outcome.reports_sent += batch.size();
      PRIVSHAPE_RETURN_IF_ERROR(
          SendFrame(fd.get(), net::MsgType::kBatchUpload,
                    net::EncodeBatchUpload(round->round_id, batch),
                    &outcome.bytes_up));
    }
    net::RoundDoneMsg done;
    done.round_id = round->round_id;
    done.answered = round->users.size() - errors;
    done.client_errors = errors;
    PRIVSHAPE_RETURN_IF_ERROR(SendFrame(fd.get(), net::MsgType::kRoundDone,
                                        net::EncodeRoundDone(done),
                                        &outcome.bytes_up));
    outcome.client_errors += errors;
    ++outcome.rounds;
  }
}

}  // namespace

Result<LoadgenOutcome> RunLoadgen(const ClientFleet& fleet,
                                  const LoadgenOptions& options) {
  if (options.connections == 0) {
    return Status::InvalidArgument("connections must be >= 1");
  }
  if (options.port == 0) {
    return Status::InvalidArgument("port must be set");
  }

  size_t n = options.connections;
  std::vector<ConnOutcome> outcomes(n);
  std::vector<Status> statuses(n, Status::Ok());
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      try {
        auto run = RunConnection(fleet, options);
        if (run.ok()) {
          outcomes[i] = std::move(*run);
        } else {
          statuses[i] = run.status();
        }
      } catch (const std::exception& e) {
        statuses[i] = Status::Internal(std::string("connection ") +
                                       std::to_string(i) + ": " + e.what());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "connection " + std::to_string(i) +
                                            ": " + statuses[i].message());
    }
  }

  // The Complete broadcast is one encode fanned out to every connection;
  // any divergence means the transport corrupted it.
  for (size_t i = 1; i < n; ++i) {
    if (!(outcomes[i].complete == outcomes[0].complete)) {
      return Status::Internal("divergent Complete broadcasts across " +
                              std::to_string(n) + " connections");
    }
  }

  LoadgenOutcome total;
  total.result.frequent_length =
      static_cast<int>(outcomes[0].complete.frequent_length);
  total.result.shapes.reserve(outcomes[0].complete.shapes.size());
  for (const auto& shape : outcomes[0].complete.shapes) {
    core::ShapeCandidate candidate;
    candidate.shape = shape.shape;
    candidate.frequency = shape.frequency;
    candidate.label = shape.label;
    total.result.shapes.push_back(std::move(candidate));
  }
  for (const auto& outcome : outcomes) {
    total.rounds = std::max(total.rounds, outcome.rounds);
    total.reports_sent += outcome.reports_sent;
    total.client_errors += outcome.client_errors;
    total.bytes_up += outcome.bytes_up;
    total.bytes_down += outcome.bytes_down;
  }
  return total;
}

}  // namespace privshape::collector
