/// Unit tests for the telemetry module: log-linear histogram bucket
/// geometry, percentile estimates against exact order statistics,
/// sharded counter merging, snapshot merge algebra, the registry's text
/// and JSON expositions, and the chrome://tracing recorder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace privshape::telemetry {
namespace {

// ---------------------------------------------------------------------
// Bucket geometry

TEST(HistogramBuckets, SmallValuesGetExactUnitBuckets) {
  for (uint64_t v = 0; v < kHistogramSubBuckets; ++v) {
    size_t index = HistogramBucketIndex(v);
    EXPECT_EQ(index, static_cast<size_t>(v));
    EXPECT_EQ(HistogramBucketLowerBound(index), v);
    EXPECT_EQ(HistogramBucketUpperBound(index), v + 1);
  }
}

TEST(HistogramBuckets, EveryValueLandsInsideItsBucket) {
  std::vector<uint64_t> probes = {0, 1, 15, 16, 17, 31, 32, 33, 63, 64,
                                  100, 1000, 4095, 4096, 4097, 65535};
  // Powers of two and their neighbours across the full uint64 range —
  // the exact spots where decade/sub-bucket arithmetic can be off by one.
  for (int shift = 4; shift < 64; ++shift) {
    uint64_t p = uint64_t{1} << shift;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(~uint64_t{0});
  for (uint64_t v : probes) {
    size_t index = HistogramBucketIndex(v);
    ASSERT_LT(index, kHistogramBuckets) << "value " << v;
    EXPECT_LE(HistogramBucketLowerBound(index), v) << "value " << v;
    if (index + 1 < kHistogramBuckets) {
      EXPECT_LT(v, HistogramBucketUpperBound(index)) << "value " << v;
    }
  }
}

TEST(HistogramBuckets, IndexIsMonotoneAndBoundsChain) {
  // Lower bounds strictly increase and each upper bound is the next
  // bucket's lower bound: the buckets tile the axis with no gaps.
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_LT(HistogramBucketLowerBound(i), HistogramBucketLowerBound(i + 1));
    EXPECT_EQ(HistogramBucketUpperBound(i), HistogramBucketLowerBound(i + 1));
  }
}

TEST(HistogramBuckets, RelativeWidthIsAtMostOneSixteenth) {
  // The advertised accuracy contract: beyond the unit buckets, a
  // bucket's width never exceeds 1/16 of its lower bound.
  for (size_t i = kHistogramSubBuckets; i + 1 < kHistogramBuckets; ++i) {
    uint64_t lo = HistogramBucketLowerBound(i);
    uint64_t width = HistogramBucketUpperBound(i) - lo;
    EXPECT_LE(width * kHistogramSubBuckets, lo) << "bucket " << i;
  }
}

// ---------------------------------------------------------------------
// Percentiles vs. exact order statistics

TEST(HistogramQuantile, MatchesExactSortWithinBucketError) {
  Histogram hist;
  std::vector<uint64_t> values;
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform spread over ~6 decades, the shape of a latency
    // distribution with a long tail.
    double exponent = 1.0 + 5.0 * rng.Uniform();
    auto v = static_cast<uint64_t>(std::pow(10.0, exponent));
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    auto rank = static_cast<uint64_t>(q * static_cast<double>(values.size()));
    if (rank < 1) rank = 1;
    double exact = static_cast<double>(values[rank - 1]);
    double approx = snap.Quantile(q);
    // The target rank's sample sits inside the bucket the estimate is
    // interpolated in, so the estimate is off by at most one bucket
    // width: 6.25% of the value (plus interpolation landing anywhere
    // within the bucket).
    EXPECT_NEAR(approx, exact, exact / 16.0 + 1.0) << "q=" << q;
  }
}

TEST(HistogramQuantile, EdgeCases) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);
  EXPECT_TRUE(empty.empty());

  Histogram one;
  one.Record(5);
  HistogramSnapshot snap = one.Snapshot();
  EXPECT_FALSE(snap.empty());
  // A single sample answers every quantile exactly — p100 must be the
  // recorded 5, not the bucket's upper bound.
  EXPECT_EQ(snap.Quantile(0.0), 5.0);
  EXPECT_EQ(snap.Quantile(0.5), 5.0);
  EXPECT_EQ(snap.Quantile(1.0), 5.0);
  EXPECT_EQ(snap.max, 5u);
  EXPECT_EQ(snap.Mean(), 5.0);
}

// ---------------------------------------------------------------------
// Counter / gauge

TEST(Counter, SumsAcrossThreadShards) {
  Counter counter;
  counter.Add();
  counter.Add(9);
  EXPECT_EQ(counter.Value(), 10u);

  // Each thread lands on some shard; Value() must see every shard's
  // contribution after the threads join.
  constexpr int kThreads = 2 * Counter::kShards + 1;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), 10u + kThreads * kPerThread);
}

TEST(Gauge, SetAddSubAndRaw) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  gauge.Add(3);
  gauge.Sub();
  EXPECT_EQ(gauge.Value(), 9);
  // raw() exposes the same atomic (the batch-queue depth bridge).
  gauge.raw()->store(-2, std::memory_order_relaxed);
  EXPECT_EQ(gauge.Value(), -2);
}

// ---------------------------------------------------------------------
// Snapshot merge algebra

TEST(HistogramSnapshot, MergeAddsCountsAndKeepsMax) {
  Histogram a;
  Histogram b;
  for (uint64_t v : {1, 2, 3}) a.Record(v);
  for (uint64_t v : {100, 200}) b.Record(v);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 5u);
  EXPECT_EQ(merged.sum, 306u);
  EXPECT_EQ(merged.max, 200u);

  // Merging into an empty snapshot adopts the other's buckets.
  HistogramSnapshot fresh;
  fresh.Merge(merged);
  EXPECT_EQ(fresh.count, 5u);
  EXPECT_EQ(fresh.sum, 306u);

  // Histogram::Merge folds a snapshot back into a live histogram (the
  // per-round -> global aggregation step).
  Histogram global;
  global.Record(1000);
  global.Merge(merged);
  HistogramSnapshot total = global.Snapshot();
  EXPECT_EQ(total.count, 6u);
  EXPECT_EQ(total.sum, 1306u);
  EXPECT_EQ(total.max, 1000u);
}

// ---------------------------------------------------------------------
// Registry and expositions

TEST(Registry, ResolvesStablePointers) {
  Registry registry;
  Counter* counter = registry.GetCounter("requests_total");
  EXPECT_EQ(counter, registry.GetCounter("requests_total"));
  EXPECT_NE(counter, registry.GetCounter("other_total"));
  EXPECT_EQ(registry.GetGauge("depth"), registry.GetGauge("depth"));
  EXPECT_EQ(registry.GetHistogram("lat_ns"), registry.GetHistogram("lat_ns"));
}

TEST(Registry, TextExpositionShape) {
  Registry registry;
  registry.GetCounter("requests_total")->Add(3);
  registry.GetGauge("queue_depth")->Set(-4);
  Histogram* hist = registry.GetHistogram("latency_ns");
  hist->Record(5);
  hist->Record(5);
  hist->Record(1000);
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE requests_total counter\nrequests_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\nqueue_depth -4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ns histogram\n"), std::string::npos);
  // Cumulative buckets: the value-5 bucket [5,6) reports 2, +Inf
  // reports all 3, and sum/count close the series.
  EXPECT_NE(text.find("latency_ns_bucket{le=\"6\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_ns_sum 1010\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_count 3\n"), std::string::npos);
}

TEST(Registry, JsonSnapshotShape) {
  Registry registry;
  registry.GetCounter("c")->Add(2);
  registry.GetGauge("g")->Set(-1);
  registry.GetHistogram("h")->Record(64);
  std::string json = registry.JsonSnapshot().Dump(0);  // compact form
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"max\":64"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace recorder

TEST(TraceRecorder, EmitsChromeTraceJson) {
  TraceRecorder recorder;
  double start = TraceNowUs();
  recorder.RecordSpan("Pa", "round", start, start + 1500.0);
  recorder.RecordInstant("protocol_error.conn.3", "connection");
  EXPECT_EQ(recorder.size(), 2u);
  std::string json = recorder.ToJson();  // compact Dump(0) form
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Pa\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1500"), std::string::npos);
}

TEST(TraceRecorder, NullSpanIsNoOp) {
  // TraceSpan against a null recorder (tracing disabled) records nothing
  // and must not crash — the default state of every instrumented binary.
  { TraceSpan span(nullptr, "Pa", "round"); }
  TraceRecorder recorder;
  {
    TraceSpan span(&recorder, "Pb", "round");
    span.Close();
    span.Close();  // idempotent
  }
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(ScopedTraceFile, WritesFileAndClearsGlobal) {
  std::string path = ::testing::TempDir() + "/privshape_trace_test.json";
  {
    ScopedTraceFile trace(path);
    ASSERT_TRUE(trace.enabled());
    ASSERT_NE(GlobalTrace(), nullptr);
    TraceSpan span(GlobalTrace(), "Pa", "round");
  }
  EXPECT_EQ(GlobalTrace(), nullptr);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.str().find("\"Pa\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScopedTraceFile, EmptyPathDisablesTracing) {
  ScopedTraceFile trace("");
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(GlobalTrace(), nullptr);
}

}  // namespace
}  // namespace privshape::telemetry
