/// \file
/// `privshape_loadgen` — simulates the device fleet against a running
/// privshape_collectord, multiplexing the users over N TCP connections.
/// Must be launched with the same --users/--dataset/--seed (and
/// --num-classes for classification runs) as the daemon; the handshake
/// rejects a fleet-size or seed mismatch.
///
/// Examples:
///   privshape_loadgen --port 9477 --users 100000 --connections 8
///   privshape_loadgen --port 9478 --users 50000 --num-classes 3
///       --connections 4 --check
///
/// --check re-runs the mechanism through the single-threaded core
/// pipeline on the locally synthesized words and exits 2 unless the
/// daemon's broadcast shapes are byte-identical — the determinism
/// contract, verified end to end over real sockets.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/loadgen.h"
#include "collector/metrics.h"
#include "collector/shapes_io.h"
#include "common/cli.h"
#include "common/json.h"
#include "core/privshape.h"
#include "telemetry/trace.h"

namespace {

using namespace privshape;  // NOLINT(build/namespaces)

Result<size_t> GetCount(const CliArgs& args, const std::string& name,
                        int def) {
  auto value = args.GetIntStatus(name, def);
  if (!value.ok()) return value.status();
  if (*value < 0) {
    return Status::InvalidArgument("--" + name + " must be >= 0");
  }
  return static_cast<size_t>(*value);
}

int Main(int argc, char** argv) {
  CliArgs args(argc, argv);

  std::string dataset = args.GetString("dataset", "trace");
  auto config = collector::GeneratedDatasetConfig(dataset);
  if (!config.ok()) {
    std::cerr << "privshape_loadgen: " << config.status() << "\n";
    return 1;
  }
  auto epsilon = args.GetDoubleStatus("epsilon", config->epsilon);
  auto timeout = args.GetDoubleStatus("timeout", 120.0);
  auto seed = args.GetIntStatus("seed", 2023);
  auto k = args.GetIntStatus("k", config->k);
  auto c = args.GetIntStatus("c", config->c);
  auto classes = args.GetIntStatus("num_classes", 0);
  if (classes.ok()) classes = args.GetIntStatus("num-classes", *classes);
  auto users = GetCount(args, "users", 100000);
  auto port = GetCount(args, "port", 0);
  auto connections = GetCount(args, "connections", 1);
  auto batch_size = GetCount(args, "batch-size", 256);
  for (const auto* flag : {&users, &port, &connections, &batch_size}) {
    if (!flag->ok()) {
      std::cerr << "privshape_loadgen: " << flag->status() << "\n";
      return 1;
    }
  }
  if (!epsilon.ok() || !timeout.ok() || !seed.ok() || !k.ok() || !c.ok() ||
      !classes.ok()) {
    std::cerr << "privshape_loadgen: malformed numeric flag\n";
    return 1;
  }
  if (*classes < 0) {
    std::cerr << "privshape_loadgen: --num-classes must be >= 0\n";
    return 1;
  }
  if (*port == 0 || *port > 65535) {
    std::cerr << "privshape_loadgen: --port must be in [1, 65535]\n";
    return 1;
  }
  config->epsilon = *epsilon;
  config->seed = static_cast<uint64_t>(*seed);
  config->k = *k;
  config->c = *c;
  config->num_classes = *classes;

  auto words = collector::GeneratedWordSource(dataset, config->seed);
  if (!words.ok()) {
    std::cerr << "privshape_loadgen: " << words.status() << "\n";
    return 1;
  }
  collector::ClientFleet::LabelFn label_fn;
  if (config->num_classes > 0) {
    auto dataset_classes = collector::GeneratedNumClasses(dataset);
    if (!dataset_classes.ok() || config->num_classes < *dataset_classes) {
      std::cerr << "privshape_loadgen: --num-classes must be >= the "
                   "dataset's class count\n";
      return 1;
    }
    auto labels = collector::GeneratedLabelSource(dataset);
    if (!labels.ok()) {
      std::cerr << "privshape_loadgen: " << labels.status() << "\n";
      return 1;
    }
    label_fn = std::move(*labels);
  }
  collector::ClientFleet fleet(*users, std::move(*words), config->metric,
                               config->seed, std::move(label_fn));

  collector::LoadgenOptions options;
  options.host = args.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(*port);
  options.connections = *connections;
  options.batch_size = *batch_size;
  options.timeout_seconds = *timeout;

  // --trace FILE: per-round client spans, chrome://tracing JSON on exit.
  telemetry::ScopedTraceFile trace(args.GetString("trace", ""));

  std::printf("privshape_loadgen: %zu users over %zu connection(s) to "
              "%s:%u\n",
              *users, options.connections, options.host.c_str(),
              options.port);
  std::fflush(stdout);
  auto outcome = collector::RunLoadgen(fleet, options);
  if (!outcome.ok()) {
    std::cerr << "privshape_loadgen: " << outcome.status() << "\n";
    return 1;
  }

  bool labeled = config->num_classes > 0;
  collector::PrintShapes(outcome->result, labeled);
  std::printf("rounds: %zu, reports sent: %zu, client errors: %zu, "
              "bytes up/down: %zu/%zu\n",
              outcome->rounds, outcome->reports_sent,
              outcome->client_errors, outcome->bytes_up,
              outcome->bytes_down);
  if (!outcome->stage_latency.empty()) {
    std::printf("\nclient round-trip latency (RoundBegin -> RoundDone):\n");
    std::printf("%-10s %8s %12s %12s %12s %12s\n", "stage", "samples",
                "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)");
    for (const auto& lat : outcome->stage_latency) {
      std::printf("%-10s %8llu %12.3f %12.3f %12.3f %12.3f\n",
                  lat.stage.c_str(),
                  static_cast<unsigned long long>(lat.samples),
                  lat.p50_ns / 1e6, lat.p95_ns / 1e6, lat.p99_ns / 1e6,
                  static_cast<double>(lat.max_ns) / 1e6);
    }
  }

  bool check_ran = false;
  bool check_ok = false;
  if (args.Has("check")) {
    std::printf("check: materializing %zu words for the core reference\n",
                *users);
    std::vector<Sequence> all_words = fleet.MaterializeWords();
    std::vector<int> all_labels = fleet.MaterializeLabels();
    core::PrivShape reference(*config);
    auto expected =
        reference.Run(all_words, labeled ? &all_labels : nullptr);
    if (!expected.ok()) {
      std::cerr << "privshape_loadgen: core pipeline failed: "
                << expected.status() << "\n";
      return 1;
    }
    check_ran = true;
    check_ok = collector::SameShapes(*expected, outcome->result);
    if (check_ok) {
      std::printf(
          "check: socket shapes == core pipeline (byte-identical)\n");
    } else {
      std::cerr << "privshape_loadgen: socket shapes DIVERGE from the "
                   "core pipeline — determinism contract VIOLATED\n";
    }
  }

  std::string json = args.GetString("json", "");
  if (!json.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Set("users", JsonValue::Uint(*users));
    doc.Set("connections", JsonValue::Uint(options.connections));
    doc.Set("rounds", JsonValue::Uint(outcome->rounds));
    doc.Set("reports_sent", JsonValue::Uint(outcome->reports_sent));
    doc.Set("client_errors", JsonValue::Uint(outcome->client_errors));
    doc.Set("bytes_up", JsonValue::Uint(outcome->bytes_up));
    doc.Set("bytes_down", JsonValue::Uint(outcome->bytes_down));
    JsonValue stages = JsonValue::Array();
    for (const auto& lat : outcome->stage_latency) {
      JsonValue stage = JsonValue::Object();
      stage.Set("stage", JsonValue::Str(lat.stage));
      stage.Set("samples", JsonValue::Uint(lat.samples));
      stage.Set("p50_ns", JsonValue::Num(lat.p50_ns));
      stage.Set("p95_ns", JsonValue::Num(lat.p95_ns));
      stage.Set("p99_ns", JsonValue::Num(lat.p99_ns));
      stage.Set("max_ns", JsonValue::Uint(lat.max_ns));
      stage.Set("mean_ns", JsonValue::Num(lat.mean_ns));
      stages.Push(std::move(stage));
    }
    doc.Set("stage_latency", std::move(stages));
    if (check_ran) doc.Set("check_ok", JsonValue::Bool(check_ok));
    Status written = collector::WriteJsonFile(doc, json);
    if (!written.ok()) {
      std::cerr << "privshape_loadgen: " << written << "\n";
      return 1;
    }
    std::printf("loadgen stats written to %s\n", json.c_str());
  }

  if (check_ran && !check_ok) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
