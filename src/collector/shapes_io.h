/// \file
/// Shared presentation and comparison of extracted shapes: the collector
/// CLI, the daemon, and the loadgen all print, JSON-export, and
/// byte-compare MechanismResults through these helpers, so "identical
/// shapes" means exactly one thing across every binary.

#ifndef PRIVSHAPE_COLLECTOR_SHAPES_IO_H_
#define PRIVSHAPE_COLLECTOR_SHAPES_IO_H_

#include "common/json.h"
#include "core/config.h"

namespace privshape::collector {

/// Prints the frequent length and the shape table to stdout (with the
/// class column when `labeled`).
void PrintShapes(const core::MechanismResult& result, bool labeled);

/// Byte-exact equality of two results: frequent length, shape symbols,
/// labels, and bit-identical frequencies (both paths share the debias
/// formulas and per-user seeds, so nothing weaker is acceptable).
bool SameShapes(const core::MechanismResult& a,
                const core::MechanismResult& b);

/// The extracted shapes (with class labels for classification runs) as a
/// JSON array, embedded next to the round metrics so the artifact a CI
/// run uploads carries the actual output, not just the throughput.
JsonValue ShapesJson(const core::MechanismResult& result, bool labeled);

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_SHAPES_IO_H_
