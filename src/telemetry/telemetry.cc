#include "telemetry/telemetry.h"

#include <algorithm>
#include <utility>

namespace privshape::telemetry {

namespace {

/// Position of the highest set bit (0 for value 0). C++17-portable
/// (std::bit_width is C++20); the loop halves the search space, so this
/// is a fixed six iterations, not a per-bit scan.
inline int HighestBit(uint64_t v) {
  int msb = 0;
  for (int shift : {32, 16, 8, 4, 2, 1}) {
    if (v >> shift) {
      v >>= shift;
      msb += shift;
    }
  }
  return msb;
}

}  // namespace

size_t Counter::ThisThreadShard() {
  static std::atomic<size_t> next_thread{0};
  thread_local size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

size_t HistogramBucketIndex(uint64_t value) {
  if (value < kHistogramSubBuckets) return static_cast<size_t>(value);
  int msb = HighestBit(value);  // >= 4 here
  size_t decade = static_cast<size_t>(msb - 3);
  size_t sub = static_cast<size_t>(value >> (msb - 4)) & 15u;
  size_t index = decade * kHistogramSubBuckets + sub;
  return std::min(index, kHistogramBuckets - 1);
}

uint64_t HistogramBucketLowerBound(size_t index) {
  if (index < kHistogramSubBuckets) return index;
  size_t decade = index / kHistogramSubBuckets;  // >= 1
  uint64_t sub = index % kHistogramSubBuckets;
  return (kHistogramSubBuckets + sub) << (decade - 1);
}

uint64_t HistogramBucketUpperBound(size_t index) {
  if (index + 1 >= kHistogramBuckets) return ~uint64_t{0};
  return HistogramBucketLowerBound(index + 1);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile among `count` ordered samples (1-based).
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
  if (target < 1) target = 1;
  if (target > count) target = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= target) {
      // Interpolate the rank's position inside this bucket's value span.
      double lo = static_cast<double>(HistogramBucketLowerBound(i));
      double hi = static_cast<double>(HistogramBucketUpperBound(i));
      double within = static_cast<double>(target - cumulative) /
                      static_cast<double>(buckets[i]);
      double value = lo + (hi - lo) * within;
      // The true maximum is tracked exactly; no estimate may exceed it.
      return std::min(value, static_cast<double>(max));
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.buckets.empty()) return;
  if (buckets.empty()) buckets.assign(kHistogramBuckets, 0);
  for (size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kHistogramBuckets);
  // Count is re-derived from the bucket sum (not count_) so the snapshot
  // is internally consistent even while records land concurrently.
  uint64_t total = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[i];
  }
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Merge(const HistogramSnapshot& snapshot) {
  for (size_t i = 0; i < snapshot.buckets.size() && i < kHistogramBuckets;
       ++i) {
    if (snapshot.buckets[i] > 0) {
      buckets_[i].fetch_add(snapshot.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_.fetch_add(snapshot.sum, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (snapshot.max > seen &&
         !max_.compare_exchange_weak(seen, snapshot.max,
                                     std::memory_order_relaxed)) {
  }
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // never destroyed: cached
  return *registry;                            // pointers outlive exit
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string Registry::TextExposition() const {
  MutexLock lock(&mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->Snapshot();
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;  // elide empty buckets
      cumulative += snap.buckets[i];
      out += name + "_bucket{le=\"" +
             std::to_string(HistogramBucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += name + "_sum " + std::to_string(snap.sum) + "\n";
    out += name + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

JsonValue Registry::JsonSnapshot() const {
  MutexLock lock(&mu_);
  JsonValue doc = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, JsonValue::Uint(counter->Value()));
  }
  doc.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, JsonValue::Int(gauge->Value()));
  }
  doc.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->Snapshot();
    JsonValue h = JsonValue::Object();
    h.Set("count", JsonValue::Uint(snap.count));
    h.Set("sum", JsonValue::Uint(snap.sum));
    h.Set("max", JsonValue::Uint(snap.max));
    h.Set("mean", JsonValue::Num(snap.Mean()));
    h.Set("p50", JsonValue::Num(snap.Quantile(0.50)));
    h.Set("p95", JsonValue::Num(snap.Quantile(0.95)));
    h.Set("p99", JsonValue::Num(snap.Quantile(0.99)));
    histograms.Set(name, std::move(h));
  }
  doc.Set("histograms", std::move(histograms));
  return doc;
}

}  // namespace privshape::telemetry
