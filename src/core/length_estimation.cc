#include "core/length_estimation.h"

#include "core/rounds.h"
#include "ldp/estimator_utils.h"
#include "ldp/grr.h"

namespace privshape::core {

PS_REPORT_PATH
Result<int> EstimateFrequentLength(const std::vector<Sequence>& sequences,
                                   const std::vector<size_t>& population,
                                   int ell_low, int ell_high, double epsilon,
                                   Rng* rng) {
  if (population.empty()) {
    return Status::InvalidArgument(
        "length estimation requires a non-empty population");
  }
  if (ell_low < 1 || ell_high < ell_low) {
    return Status::InvalidArgument("need 1 <= ell_low <= ell_high");
  }
  size_t domain = static_cast<size_t>(ell_high - ell_low + 1);
  if (domain == 1) return ell_low;

  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();

  std::vector<size_t> counts(domain, 0);
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    // Shared user-side logic (same as ClientSession / LocalLengthRound),
    // here drawing from the caller's shared engine (baseline semantics).
    counts[AnswerLengthValue(sequences[user], ell_low, ell_high, *grr,
                             rng)]++;
  }

  std::vector<double> estimates =
      ldp::DebiasGrrCounts(counts, population.size(), epsilon);
  size_t best = 0;
  for (size_t v = 1; v < estimates.size(); ++v) {
    if (estimates[v] > estimates[best]) best = v;
  }
  return ell_low + static_cast<int>(best);
}

}  // namespace privshape::core
