#ifndef PRIVSHAPE_CORE_LENGTH_ESTIMATION_H_
#define PRIVSHAPE_CORE_LENGTH_ESTIMATION_H_

#include <vector>

#include "common/analysis_annotations.h"
#include "common/rng.h"
#include "common/status.h"
#include "series/sequence.h"

namespace privshape::core {

/// Frequent-length estimation (§III-C-a, Eq. (1)): each user in the given
/// population clips the length of their compressed sequence into
/// [ell_low, ell_high], perturbs it with GRR at budget `epsilon`, and the
/// server returns the argmax of the debiased counts. This fixes the height
/// ell_S of the candidate trie.
PS_REPORT_PATH
Result<int> EstimateFrequentLength(const std::vector<Sequence>& sequences,
                                   const std::vector<size_t>& population,
                                   int ell_low, int ell_high, double epsilon,
                                   Rng* rng);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_LENGTH_ESTIMATION_H_
