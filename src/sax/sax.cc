#include "sax/sax.h"

#include <algorithm>

#include "common/math_utils.h"
#include "sax/breakpoints.h"
#include "sax/paa.h"

namespace privshape::sax {

Result<SaxTransformer> SaxTransformer::Create(int t, int w, bool z_normalize) {
  if (w < 1) return Status::InvalidArgument("segment length must be >= 1");
  auto bp = Breakpoints(t);
  if (!bp.ok()) return bp.status();
  auto levels = SymbolLevels(t);
  if (!levels.ok()) return levels.status();
  return SaxTransformer(t, w, z_normalize, std::move(*bp),
                        std::move(*levels));
}

Symbol SaxTransformer::Discretize(double value) const {
  // First breakpoint >= value determines the band index.
  auto it = std::upper_bound(breakpoints_.begin(), breakpoints_.end(), value);
  return static_cast<Symbol>(it - breakpoints_.begin());
}

Result<Sequence> SaxTransformer::Transform(
    const std::vector<double>& values) const {
  if (values.empty()) {
    return Status::InvalidArgument("cannot transform an empty series");
  }
  std::vector<double> working = values;
  if (z_normalize_) ZNormalize(&working);
  auto paa = PiecewiseAggregate(working, w_);
  if (!paa.ok()) return paa.status();
  Sequence word;
  word.reserve(paa->size());
  for (double v : *paa) word.push_back(Discretize(v));
  return word;
}

Result<std::vector<Sequence>> SaxTransformer::TransformDataset(
    const series::Dataset& dataset) const {
  std::vector<Sequence> out;
  out.reserve(dataset.size());
  for (const auto& inst : dataset.instances) {
    auto word = Transform(inst.values);
    if (!word.ok()) return word.status();
    out.push_back(std::move(*word));
  }
  return out;
}

std::vector<double> SaxTransformer::Reconstruct(const Sequence& word) const {
  std::vector<double> out;
  out.reserve(word.size() * static_cast<size_t>(w_));
  for (Symbol s : word) {
    double level = s < levels_.size() ? levels_[s] : 0.0;
    for (int i = 0; i < w_; ++i) out.push_back(level);
  }
  return out;
}

}  // namespace privshape::sax
