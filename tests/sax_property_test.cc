// Parameterized property sweeps over the SAX pipeline for every (t, w)
// combination the paper's experiments touch.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "sax/compressive.h"
#include "sax/paa.h"
#include "sax/sax.h"

namespace privshape {
namespace {

class SaxParamTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SaxParamTest, WordLengthIsCeilMOverW) {
  auto [t, w] = GetParam();
  auto sax = sax::SaxTransformer::Create(t, w, true);
  ASSERT_TRUE(sax.ok());
  Rng rng(401);
  for (size_t m : {7u, 64u, 275u, 398u}) {
    std::vector<double> v(m);
    for (auto& x : v) x = rng.Gaussian();
    auto word = sax->Transform(v);
    ASSERT_TRUE(word.ok());
    EXPECT_EQ(word->size(), (m + static_cast<size_t>(w) - 1) /
                                static_cast<size_t>(w));
  }
}

TEST_P(SaxParamTest, SymbolsStayInAlphabet) {
  auto [t, w] = GetParam();
  auto sax = sax::SaxTransformer::Create(t, w, true);
  ASSERT_TRUE(sax.ok());
  Rng rng(402);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.Gaussian(0.0, 5.0);
  auto word = sax->Transform(v);
  ASSERT_TRUE(word.ok());
  for (Symbol s : *word) EXPECT_LT(static_cast<int>(s), t);
}

TEST_P(SaxParamTest, CompressionNeverLengthens) {
  auto [t, w] = GetParam();
  auto sax = sax::SaxTransformer::Create(t, w, true);
  ASSERT_TRUE(sax.ok());
  Rng rng(403);
  std::vector<double> v(300);
  for (auto& x : v) x = rng.Gaussian();
  auto word = sax->Transform(v);
  ASSERT_TRUE(word.ok());
  Sequence compressed = sax::CompressSax(*word);
  EXPECT_LE(compressed.size(), word->size());
  EXPECT_TRUE(sax::IsCompressed(compressed));
}

TEST_P(SaxParamTest, MonotoneSeriesGivesMonotoneWord) {
  auto [t, w] = GetParam();
  auto sax = sax::SaxTransformer::Create(t, w, /*z_normalize=*/true);
  ASSERT_TRUE(sax.ok());
  std::vector<double> v(120);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  auto word = sax->Transform(v);
  ASSERT_TRUE(word.ok());
  for (size_t i = 1; i < word->size(); ++i) {
    EXPECT_GE((*word)[i], (*word)[i - 1]);
  }
  // A strictly increasing line must reach both alphabet extremes.
  EXPECT_EQ((*word)[0], 0);
  EXPECT_EQ(static_cast<int>(word->back()), t - 1);
}

TEST_P(SaxParamTest, ReconstructTransformIsFixedPoint) {
  auto [t, w] = GetParam();
  auto sax = sax::SaxTransformer::Create(t, w, /*z_normalize=*/false);
  ASSERT_TRUE(sax.ok());
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    Sequence word;
    size_t len = 1 + rng.Index(10);
    for (size_t i = 0; i < len; ++i) {
      word.push_back(static_cast<Symbol>(rng.Index(static_cast<size_t>(t))));
    }
    auto rec = sax->Reconstruct(word);
    auto back = sax->Transform(rec);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, word);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, SaxParamTest,
                         ::testing::Combine(::testing::Values(3, 4, 5, 6, 7),
                                            ::testing::Values(5, 10, 15, 25)));

class PaaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PaaPropertyTest, MeanIsPreservedOnDivisibleLengths) {
  int w = GetParam();
  Rng rng(405);
  std::vector<double> v(static_cast<size_t>(w) * 12);
  for (auto& x : v) x = rng.Gaussian();
  auto paa = sax::PiecewiseAggregate(v, w);
  ASSERT_TRUE(paa.ok());
  EXPECT_NEAR(Mean(*paa), Mean(v), 1e-9);
}

TEST_P(PaaPropertyTest, ConstantSeriesStaysConstant) {
  int w = GetParam();
  std::vector<double> v(100, 3.25);
  auto paa = sax::PiecewiseAggregate(v, w);
  ASSERT_TRUE(paa.ok());
  for (double x : *paa) EXPECT_DOUBLE_EQ(x, 3.25);
}

TEST_P(PaaPropertyTest, OutputBoundedByInputRange) {
  int w = GetParam();
  Rng rng(406);
  std::vector<double> v(173);
  double lo = 1e300, hi = -1e300;
  for (auto& x : v) {
    x = rng.Uniform(-7.0, 13.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  auto paa = sax::PiecewiseAggregate(v, w);
  ASSERT_TRUE(paa.ok());
  for (double x : *paa) {
    EXPECT_GE(x, lo - 1e-12);
    EXPECT_LE(x, hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PaaPropertyTest,
                         ::testing::Values(1, 2, 5, 8, 25));

}  // namespace
}  // namespace privshape
