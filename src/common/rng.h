#ifndef PRIVSHAPE_COMMON_RNG_H_
#define PRIVSHAPE_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace privshape {

/// Deterministically derives an independent stream seed from a base seed
/// and a stream index (SplitMix64 finalizer over the combined words).
///
/// This is how every simulated user gets its own reproducible randomness:
/// user i's draws depend only on (base, i), never on how many other users
/// ran before it or on which thread/shard processed it. The single-threaded
/// core pipeline and the multi-threaded collector both derive per-user
/// engines through this function, which is what makes their outputs
/// byte-identical for a fixed seed.
inline uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic random engine used across the library.
///
/// Every randomized component takes a Rng& (or a seed) explicitly so tests
/// and benchmarks are reproducible; there is no hidden global generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n); n must be positive.
  size_t Index(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Standard (or scaled) normal draw.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Laplace(0, b) draw via inverse CDF.
  double Laplace(double scale) {
    double u = Uniform(-0.5, 0.5);
    double sign = u < 0 ? -1.0 : 1.0;
    return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
  }

  /// Samples an index proportionally to the given non-negative weights.
  /// Returns weights.size() - 1 on degenerate input (all zero weights are
  /// treated as uniform).
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Derives an independent child engine; used to give each simulated user
  /// or worker thread its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_RNG_H_
