#include "eval/kshape.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "eval/ari.h"

namespace privshape {
namespace {

using eval::KShape;
using eval::KShapeOptions;
using eval::ShapeBasedDistance;

std::vector<double> Sine(size_t n, double phase, double noise, Rng* rng) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * M_PI * static_cast<double>(i) /
                        static_cast<double>(n) +
                    phase) +
           (rng ? rng->Gaussian(0.0, noise) : 0.0);
  }
  return v;
}

std::vector<double> Square(size_t n, double noise, Rng* rng) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (i < n / 2 ? 1.0 : -1.0) + (rng ? rng->Gaussian(0.0, noise) : 0.0);
  }
  return v;
}

TEST(SbdTest, IdenticalSeriesDistanceZero) {
  Rng rng(151);
  auto s = Sine(64, 0.0, 0.0, nullptr);
  EXPECT_NEAR(ShapeBasedDistance(s, s), 0.0, 1e-9);
}

TEST(SbdTest, ShiftInvariance) {
  // SBD aligns by cross-correlation, so a circularly shifted copy is
  // nearly distance zero (edge effects only).
  auto a = Sine(128, 0.0, 0.0, nullptr);
  auto b = Sine(128, 0.5, 0.0, nullptr);  // phase-shifted sine
  EXPECT_LT(ShapeBasedDistance(a, b), 0.1);
}

TEST(SbdTest, DistinctShapesFarApart) {
  auto a = Sine(128, 0.0, 0.0, nullptr);
  auto b = Square(128, 0.0, nullptr);
  EXPECT_GT(ShapeBasedDistance(a, b), 0.05);
}

TEST(SbdTest, BoundedByTwo) {
  Rng rng(152);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(32), b(32);
    for (auto& x : a) x = rng.Gaussian();
    for (auto& x : b) x = rng.Gaussian();
    double d = ShapeBasedDistance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 2.0 + 1e-9);
  }
}

TEST(KShapeTest, SeparatesSineFromSquare) {
  Rng rng(153);
  std::vector<std::vector<double>> series;
  std::vector<int> truth;
  for (int i = 0; i < 20; ++i) {
    series.push_back(Sine(64, 0.0, 0.05, &rng));
    truth.push_back(0);
    series.push_back(Square(64, 0.05, &rng));
    truth.push_back(1);
  }
  KShapeOptions options;
  options.k = 2;
  auto result = KShape(series, options);
  ASSERT_TRUE(result.ok());
  auto ari = eval::AdjustedRandIndex(truth, result->assignments);
  ASSERT_TRUE(ari.ok());
  EXPECT_GT(*ari, 0.8);
}

TEST(KShapeTest, CentroidsAreZNormalized) {
  Rng rng(154);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 10; ++i) series.push_back(Sine(64, 0.0, 0.05, &rng));
  KShapeOptions options;
  options.k = 1;
  auto result = KShape(series, options);
  ASSERT_TRUE(result.ok());
  double mean = 0, var = 0;
  for (double v : result->centroids[0]) mean += v;
  mean /= 64.0;
  for (double v : result->centroids[0]) var += (v - mean) * (v - mean);
  var /= 64.0;
  EXPECT_NEAR(mean, 0.0, 1e-6);
  EXPECT_NEAR(var, 1.0, 1e-6);
}

TEST(KShapeTest, RejectsInvalidInputs) {
  KShapeOptions options;
  options.k = 2;
  EXPECT_FALSE(KShape({}, options).ok());
  EXPECT_FALSE(KShape({{1.0, 2.0}}, options).ok());           // k > n
  EXPECT_FALSE(KShape({{1.0}, {1.0, 2.0}}, options).ok());    // ragged
}

TEST(KShapeTest, DeterministicForSeed) {
  Rng rng(155);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 12; ++i) {
    series.push_back(Sine(32, 0.0, 0.1, &rng));
  }
  KShapeOptions options;
  options.k = 2;
  options.seed = 5;
  auto a = KShape(series, options);
  auto b = KShape(series, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

}  // namespace
}  // namespace privshape
