#include "bench/harness.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>

#include "common/math_utils.h"
#include "core/classification.h"
#include "distance/distance.h"
#include "eval/ari.h"
#include "eval/kmeans.h"
#include "eval/random_forest.h"
#include "patternldp/pattern_ldp.h"
#include "sax/paa.h"

namespace privshape::bench {

namespace {

/// Shared worker pool: per-user perturbation is embarrassingly parallel
/// ("we treat all the users' operations concurrently", §V-F). Sized by
/// PRIVSHAPE_THREADS when set (the shared --threads knob), otherwise
/// hardware concurrency.
ThreadPool& SharedPool() {
  static ThreadPool pool([] {
    const char* env = std::getenv("PRIVSHAPE_THREADS");
    if (env != nullptr) {
      int v = std::atoi(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    return size_t{0};
  }());
  return pool;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int> TrueLabels(const series::Dataset& dataset) {
  std::vector<int> labels;
  labels.reserve(dataset.size());
  for (const auto& inst : dataset.instances) labels.push_back(inst.label);
  return labels;
}

/// ARI of assigning each sequence to its nearest extracted shape.
double ShapeAssignmentAri(const std::vector<Sequence>& sequences,
                          const std::vector<Sequence>& shapes,
                          const std::vector<int>& truth,
                          dist::Metric metric) {
  auto assignments = eval::AssignToNearestShape(sequences, shapes, metric);
  if (!assignments.ok()) return 0.0;
  auto ari = eval::AdjustedRandIndex(truth, *assignments);
  return ari.ok() ? *ari : 0.0;
}

std::vector<std::vector<double>> RfFeatures(const series::Dataset& dataset,
                                            int paa_w) {
  std::vector<std::vector<double>> out;
  out.reserve(dataset.size());
  for (const auto& inst : dataset.instances) {
    auto paa = sax::PiecewiseAggregate(inst.values, paa_w);
    out.push_back(paa.ok() ? *paa : inst.values);
  }
  return out;
}

}  // namespace

ExperimentScale ScaleFromArgs(const CliArgs& args, size_t default_users,
                              int default_trials) {
  ExperimentScale scale;
  scale.users = static_cast<size_t>(
      args.GetInt("users", static_cast<int>(default_users)));
  scale.trials = args.GetInt("trials", default_trials);
  scale.seed = static_cast<uint64_t>(args.GetInt("seed", 2023));
  scale.threads = ThreadsFromArgs(args);
  if (args.Has("threads")) {
    // Re-export so the resolved value also reaches SharedPool(), which is
    // created lazily on first use (always after ScaleFromArgs in bench
    // mains) and reads PRIVSHAPE_THREADS. Flags beat env vars, so an
    // explicit --threads=0 ("hardware") overwrites a stale env value too.
    setenv("PRIVSHAPE_THREADS", std::to_string(scale.threads).c_str(), 1);
  }
  return scale;
}

std::vector<eval::LabeledShape> GroundTruthShapes(
    const series::Dataset& dataset,
    const core::TransformOptions& transform) {
  std::vector<eval::LabeledShape> shapes;
  for (int label : dataset.Labels()) {
    auto members = dataset.FilterByLabel(label);
    if (members.empty()) continue;
    // Per-class mean series (all instances share a length per dataset).
    std::vector<double> mean(members.instances[0].values.size(), 0.0);
    for (const auto& inst : members.instances) {
      for (size_t i = 0; i < mean.size(); ++i) mean[i] += inst.values[i];
    }
    for (double& v : mean) v /= static_cast<double>(members.size());
    auto word = core::TransformSeries(mean, transform);
    if (word.ok()) shapes.push_back({*word, label});
  }
  return shapes;
}

ShapeQuality MeasureShapeQuality(
    const std::vector<Sequence>& extracted,
    const std::vector<eval::LabeledShape>& ground_truth) {
  ShapeQuality quality;
  if (extracted.empty() || ground_truth.empty()) {
    quality.dtw = quality.sed = quality.euclidean =
        std::numeric_limits<double>::quiet_NaN();
    return quality;
  }
  // Greedy matching: each ground-truth shape to its DTW-nearest extraction
  // (the paper matches centers by DTW distance, Figs. 8/10).
  for (const auto& gt : ground_truth) {
    double best = std::numeric_limits<double>::infinity();
    size_t match = 0;
    for (size_t i = 0; i < extracted.size(); ++i) {
      double d = dist::DtwSymbolic(gt.shape, extracted[i]);
      if (d < best) {
        best = d;
        match = i;
      }
    }
    quality.dtw += best;
    quality.sed += dist::EditDistance(gt.shape, extracted[match]);
    quality.euclidean += dist::EuclideanSymbolic(gt.shape, extracted[match]);
  }
  double n = static_cast<double>(ground_truth.size());
  quality.dtw /= n;
  quality.sed /= n;
  quality.euclidean /= n;
  return quality;
}

core::TransformOptions SymbolsTransform() {
  core::TransformOptions transform;
  transform.t = 6;
  transform.w = 25;
  return transform;
}

core::TransformOptions TraceTransform() {
  core::TransformOptions transform;
  transform.t = 4;
  transform.w = 10;
  return transform;
}

core::MechanismConfig SymbolsConfig(double epsilon, uint64_t seed) {
  core::MechanismConfig config;
  config.epsilon = epsilon;
  config.t = 6;
  config.k = 6;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 15;
  config.metric = dist::Metric::kDtw;
  config.seed = seed;
  return config;
}

core::MechanismConfig TraceConfig(double epsilon, uint64_t seed) {
  core::MechanismConfig config;
  config.epsilon = epsilon;
  config.t = 4;
  config.k = 3;
  config.c = 3;
  config.ell_low = 1;
  config.ell_high = 10;
  config.metric = dist::Metric::kSed;
  config.seed = seed;
  return config;
}

ClusteringOutcome RunPrivShapeClustering(
    const series::Dataset& dataset, const core::TransformOptions& transform,
    const core::MechanismConfig& config) {
  ClusteringOutcome outcome;
  auto sequences = core::TransformDataset(dataset, transform);
  if (!sequences.ok()) return outcome;
  double start = Now();
  core::PrivShape mech(config);
  auto result = mech.Run(*sequences);
  outcome.seconds = Now() - start;
  if (!result.ok()) return outcome;
  for (const auto& s : result->shapes) outcome.shapes.push_back(s.shape);
  outcome.ari = ShapeAssignmentAri(*sequences, outcome.shapes,
                                   TrueLabels(dataset), config.metric);
  outcome.quality = MeasureShapeQuality(outcome.shapes,
                                        GroundTruthShapes(dataset, transform));
  return outcome;
}

ClusteringOutcome RunBaselineClustering(
    const series::Dataset& dataset, const core::TransformOptions& transform,
    const core::MechanismConfig& config) {
  ClusteringOutcome outcome;
  auto sequences = core::TransformDataset(dataset, transform);
  if (!sequences.ok()) return outcome;
  double start = Now();
  core::BaselineMechanism mech(config);
  auto result = mech.Run(*sequences);
  outcome.seconds = Now() - start;
  if (!result.ok()) return outcome;
  for (const auto& s : result->shapes) outcome.shapes.push_back(s.shape);
  outcome.ari = ShapeAssignmentAri(*sequences, outcome.shapes,
                                   TrueLabels(dataset), config.metric);
  outcome.quality = MeasureShapeQuality(outcome.shapes,
                                        GroundTruthShapes(dataset, transform));
  return outcome;
}

ClusteringOutcome RunPatternLdpKMeansClustering(
    const series::Dataset& dataset, const core::TransformOptions& transform,
    const PatternLdpBenchOptions& options, int k) {
  ClusteringOutcome outcome;
  pldp::PatternLdpConfig pl_config;
  pl_config.epsilon = options.epsilon;
  auto mech = pldp::PatternLdp::Create(pl_config);
  if (!mech.ok()) return outcome;
  double start = Now();
  auto perturbed =
      mech->PerturbDatasetParallel(dataset, &SharedPool(), options.seed);
  if (!perturbed.ok()) return outcome;

  std::vector<std::vector<double>> points;
  points.reserve(perturbed->size());
  for (const auto& inst : perturbed->instances) points.push_back(inst.values);
  eval::KMeansOptions km;
  km.k = k;
  km.n_init = options.kmeans_restarts;
  km.max_iterations = options.kmeans_max_iterations;
  km.seed = options.seed;
  auto result = eval::KMeans(points, km);
  outcome.seconds = Now() - start;
  if (!result.ok()) return outcome;

  auto ari = eval::AdjustedRandIndex(TrueLabels(dataset),
                                     result->assignments);
  outcome.ari = ari.ok() ? *ari : 0.0;
  // Shape quality of the KMeans centroids after Compressive SAX.
  for (const auto& centroid : result->centroids) {
    auto word = core::TransformSeries(centroid, transform);
    if (word.ok()) outcome.shapes.push_back(*word);
  }
  outcome.quality = MeasureShapeQuality(outcome.shapes,
                                        GroundTruthShapes(dataset, transform));
  return outcome;
}

ClassificationOutcome RunPrivShapeClassification(
    const series::Dataset& train, const series::Dataset& test,
    const core::TransformOptions& transform,
    const core::MechanismConfig& config) {
  ClassificationOutcome outcome;
  auto train_seqs = core::TransformDataset(train, transform);
  auto test_seqs = core::TransformDataset(test, transform);
  if (!train_seqs.ok() || !test_seqs.ok()) return outcome;
  std::vector<int> train_labels = TrueLabels(train);
  double start = Now();
  core::PrivShape mech(config);
  auto shapes = core::PrivShapeLabeledShapes(mech, *train_seqs, train_labels);
  outcome.seconds = Now() - start;
  if (!shapes.ok()) return outcome;
  outcome.shapes = *shapes;
  auto clf = eval::NearestShapeClassifier::Create(*shapes, config.metric);
  if (!clf.ok()) return outcome;
  auto acc = eval::Accuracy(TrueLabels(test), clf->ClassifyBatch(*test_seqs));
  outcome.accuracy = acc.ok() ? *acc : 0.0;
  std::vector<Sequence> raw;
  for (const auto& s : outcome.shapes) raw.push_back(s.shape);
  outcome.quality =
      MeasureShapeQuality(raw, GroundTruthShapes(train, transform));
  return outcome;
}

ClassificationOutcome RunBaselineClassification(
    const series::Dataset& train, const series::Dataset& test,
    const core::TransformOptions& transform,
    const core::MechanismConfig& config) {
  ClassificationOutcome outcome;
  auto train_seqs = core::TransformDataset(train, transform);
  auto test_seqs = core::TransformDataset(test, transform);
  if (!train_seqs.ok() || !test_seqs.ok()) return outcome;
  std::vector<int> train_labels = TrueLabels(train);
  int num_classes = static_cast<int>(train.Labels().size());
  double start = Now();
  core::BaselineMechanism mech(config);
  auto shapes = core::ExtractShapesPerClass(mech, *train_seqs, train_labels,
                                            num_classes,
                                            /*shapes_per_class=*/1);
  outcome.seconds = Now() - start;
  if (!shapes.ok()) return outcome;
  outcome.shapes = *shapes;
  auto clf = eval::NearestShapeClassifier::Create(*shapes, config.metric);
  if (!clf.ok()) return outcome;
  auto acc = eval::Accuracy(TrueLabels(test), clf->ClassifyBatch(*test_seqs));
  outcome.accuracy = acc.ok() ? *acc : 0.0;
  std::vector<Sequence> raw;
  for (const auto& s : outcome.shapes) raw.push_back(s.shape);
  outcome.quality =
      MeasureShapeQuality(raw, GroundTruthShapes(train, transform));
  return outcome;
}

ClassificationOutcome RunPatternLdpRfClassification(
    const series::Dataset& train, const series::Dataset& test,
    const PatternLdpBenchOptions& options, int num_classes) {
  (void)num_classes;
  ClassificationOutcome outcome;
  pldp::PatternLdpConfig pl_config;
  pl_config.epsilon = options.epsilon;
  auto mech = pldp::PatternLdp::Create(pl_config);
  if (!mech.ok()) return outcome;
  double start = Now();
  auto perturbed =
      mech->PerturbDatasetParallel(train, &SharedPool(), options.seed);
  if (!perturbed.ok()) return outcome;

  auto train_x = RfFeatures(*perturbed, options.rf_feature_paa);
  auto test_x = RfFeatures(test, options.rf_feature_paa);
  eval::RandomForest::Options rf;
  rf.num_trees = options.rf_trees;
  rf.seed = options.seed;
  auto forest = eval::RandomForest::Fit(train_x, TrueLabels(*perturbed), rf);
  outcome.seconds = Now() - start;
  if (!forest.ok()) return outcome;
  auto acc = eval::Accuracy(TrueLabels(test), forest->PredictBatch(test_x));
  outcome.accuracy = acc.ok() ? *acc : 0.0;
  return outcome;
}

void PrintTitle(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

void PrintHeader(const std::vector<std::string>& columns) {
  PrintRow(columns);
  std::string sep;
  for (size_t i = 0; i < columns.size(); ++i) {
    sep += (i ? " | " : "") + std::string(12, '-');
  }
  std::cout << sep << "\n";
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) std::cout << " | ";
    std::cout << cells[i];
    if (cells[i].size() < 12) std::cout << std::string(12 - cells[i].size(), ' ');
  }
  std::cout << "\n";
}

std::unique_ptr<CsvWriter> MaybeCsv(const std::string& name) {
  const char* dir = std::getenv("PRIVSHAPE_CSV_DIR");
  if (dir == nullptr) return nullptr;
  auto writer = std::make_unique<CsvWriter>(std::string(dir) + "/" + name +
                                            ".csv");
  return writer->ok() ? std::move(writer) : nullptr;
}

JsonBenchWriter::JsonBenchWriter(std::string path)
    : path_(std::move(path)),
      meta_(JsonValue::Object()),
      records_(JsonValue::Array()) {}

void JsonBenchWriter::SetMeta(const std::string& key,
                              const std::string& value) {
  meta_.Set(key, JsonValue::Str(value));
}

void JsonBenchWriter::SetMeta(const std::string& key, uint64_t value) {
  meta_.Set(key, JsonValue::Uint(value));
}

void JsonBenchWriter::AddRecord(
    const std::string& benchmark,
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::vector<std::pair<std::string, double>>& metrics) {
  JsonValue record = JsonValue::Object();
  record.Set("benchmark", JsonValue::Str(benchmark));
  JsonValue p = JsonValue::Object();
  for (const auto& [key, value] : params) p.Set(key, JsonValue::Str(value));
  record.Set("params", std::move(p));
  JsonValue m = JsonValue::Object();
  for (const auto& [key, value] : metrics) m.Set(key, JsonValue::Num(value));
  record.Set("metrics", std::move(m));
  records_.Push(std::move(record));
  flushed_ = false;
}

bool JsonBenchWriter::Flush() {
  std::ofstream out(path_);
  if (!out.is_open()) return false;
  if (meta_.size() > 0) {
    JsonValue doc = JsonValue::Object();
    doc.Set("meta", meta_);
    doc.Set("records", records_);
    out << doc.Dump(2);
  } else {
    out << records_.Dump(2);
  }
  flushed_ = out.good();
  return flushed_;
}

JsonBenchWriter::~JsonBenchWriter() {
  // Never clobber an existing baseline with an empty array: a bench that
  // errored out before recording anything leaves the old file intact.
  if (!flushed_ && records_.size() > 0) Flush();
}

std::unique_ptr<JsonBenchWriter> MaybeJson(const CliArgs& args,
                                           const std::string& default_path) {
  std::string path = args.GetString("json", default_path);
  if (path.empty()) return nullptr;
  return std::make_unique<JsonBenchWriter>(path);
}

}  // namespace privshape::bench
