#include "protocol/session.h"

#include <algorithm>

#include "core/em_selection.h"
#include "core/rounds.h"
#include "core/subshape.h"
#include "ldp/estimator_utils.h"
#include "ldp/exponential.h"
#include "ldp/grr.h"

namespace privshape::proto {

Result<std::string> ClientSession::AnswerLengthRequest(int ell_low,
                                                       int ell_high,
                                                       double epsilon) {
  if (ell_low < 1 || ell_high < ell_low) {
    return Status::InvalidArgument("invalid length range");
  }
  size_t domain = static_cast<size_t>(ell_high - ell_low + 1);
  Report report;
  report.kind = ReportKind::kLength;
  if (domain == 1) {
    report.value = 0;
  } else {
    auto grr = ldp::Grr::Create(domain, epsilon);
    if (!grr.ok()) return grr.status();
    // Shared user-side logic: same draws as core::LocalLengthRound.
    report.value =
        core::AnswerLengthValue(word_, ell_low, ell_high, *grr, &rng_);
  }
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerSubShapeRequest(int alphabet,
                                                         int ell_s,
                                                         double epsilon,
                                                         bool allow_repeats) {
  if (ell_s < 2) {
    return Status::FailedPrecondition("no sub-shapes for ell_s < 2");
  }
  size_t domain = core::SubShapeDomainSize(alphabet, allow_repeats);
  auto grr = ldp::Grr::Create(domain, epsilon);
  if (!grr.ok()) return grr.status();
  // Shared user-side logic: same draws as core::LocalSubShapeRound.
  auto [level, value] = core::AnswerSubShapeValue(
      word_, ell_s, alphabet, allow_repeats, *grr, &rng_);
  Report report;
  report.kind = ReportKind::kSubShape;
  report.level = level;
  report.value = value;
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerCandidateRequest(
    const std::string& request) {
  auto decoded = DecodeCandidateRequest(request);
  if (!decoded.ok()) return decoded.status();
  if (decoded->candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  auto em = ldp::ExponentialMechanism::Create(decoded->epsilon);
  if (!em.ok()) return em.status();
  auto distance = dist::MakeDistance(metric_);
  // Shared matching path: identical distance vectors (and hence identical
  // EM draws) to the in-process core::LocalSelectionRound.
  std::vector<double> distances = core::MatchDistances(
      word_, decoded->candidates, /*prefix_compare=*/true, *distance);
  auto pick = em->Select(ldp::ScoresFromDistances(distances), &rng_);
  if (!pick.ok()) return pick.status();
  Report report;
  report.kind = ReportKind::kSelection;
  report.level = decoded->level;
  report.value = *pick;
  return EncodeReport(report);
}

Result<std::string> ClientSession::AnswerRefinementRequest(
    const std::string& request) {
  auto decoded = DecodeCandidateRequest(request);
  if (!decoded.ok()) return decoded.status();
  if (decoded->candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  auto grr = ldp::Grr::Create(
      std::max<size_t>(decoded->candidates.size(), 2), decoded->epsilon);
  if (!grr.ok()) return grr.status();
  auto distance = dist::MakeDistance(metric_);
  size_t best_idx =
      core::ClosestCandidate(word_, decoded->candidates, *distance);
  Report report;
  report.kind = ReportKind::kRefinement;
  report.value = grr->PerturbValue(best_idx, &rng_);
  return EncodeReport(report);
}

ReportAggregator::ReportAggregator(ReportKind kind, size_t domain,
                                   double epsilon)
    : kind_(kind), domain_(domain), epsilon_(epsilon), counts_(domain, 0) {}

void ReportAggregator::Consume(const std::string& encoded) {
  auto report = DecodeReport(encoded);
  if (!report.ok()) {
    ++rejected_;
    return;
  }
  ConsumeReport(*report);
}

void ReportAggregator::ConsumeReport(const Report& report) {
  if (report.kind != kind_ || report.value >= domain_) {
    ++rejected_;
    return;
  }
  counts_[report.value]++;
  ++accepted_;
}

Status ReportAggregator::Merge(const ReportAggregator& other) {
  if (other.kind_ != kind_ || other.domain_ != domain_ ||
      other.epsilon_ != epsilon_) {
    return Status::InvalidArgument("cannot merge mismatched aggregators");
  }
  for (size_t v = 0; v < domain_; ++v) counts_[v] += other.counts_[v];
  accepted_ += other.accepted_;
  rejected_ += other.rejected_;
  return Status::Ok();
}

std::vector<double> ReportAggregator::EstimatedCounts() const {
  if (kind_ == ReportKind::kSelection) {
    std::vector<double> out(domain_);
    for (size_t v = 0; v < domain_; ++v) {
      out[v] = static_cast<double>(counts_[v]);
    }
    return out;
  }
  // Shared debias path: identical raw counts give byte-identical
  // estimates to the in-process ldp::Grr oracle.
  return ldp::DebiasGrrCounts(counts_, accepted_, epsilon_);
}

}  // namespace privshape::proto
