#ifndef PRIVSHAPE_SERIES_GENERATORS_H_
#define PRIVSHAPE_SERIES_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "series/time_series.h"

namespace privshape::series {

/// Shared knobs for the synthetic class-template generators.
///
/// These generators substitute for the paper's UCR datasets plus their
/// GAN-BiLSTM augmentation (Table II): each class is a smooth silhouette
/// template; an instance is the template passed through a smooth random
/// time warp, an amplitude scale, and additive Gaussian noise, then
/// z-normalized. That reproduces exactly the variation modes the paper's
/// mechanisms must be robust to — noise, scaling, and time not warping.
struct GeneratorOptions {
  size_t num_instances = 1000;   ///< total instances across all classes
  uint64_t seed = 2023;          ///< deterministic generation seed
  double noise_stddev = 0.08;    ///< additive Gaussian noise (pre-normalize)
  double warp_strength = 0.15;   ///< max relative displacement of time warp
  double amplitude_jitter = 0.2; ///< amplitude scale ~ U(1-j, 1+j)
  bool z_normalize = true;       ///< UCR datasets ship z-normalized
};

/// Symbols-like dataset: 6 classes of hand-motion style silhouettes,
/// instance length 398 (Table II).
Dataset MakeSymbolsDataset(const GeneratorOptions& options);

/// Trace-like dataset: 3 classes of reactor-channel style transients
/// (level shift / ramp with overshoot / damped oscillation), length 275.
Dataset MakeTraceDataset(const GeneratorOptions& options);

/// Class counts / instance lengths of the two template families, for
/// callers that synthesize instances one at a time.
inline constexpr int kSymbolsClasses = 6;
inline constexpr size_t kSymbolsLength = 398;
inline constexpr int kTraceClasses = 3;
inline constexpr size_t kTraceLength = 275;

/// One instance of the given class: template -> smooth time warp ->
/// amplitude scale + Gaussian noise -> optional z-normalization, drawing
/// all randomness from `rng`. The Make*Dataset generators are loops over
/// these; the collector's ClientFleet uses them to materialize a
/// million-user fleet one instance at a time (O(1) memory per in-flight
/// user) with per-user derived seeds.
TimeSeries MakeSymbolsInstance(int label, const GeneratorOptions& options,
                               Rng* rng);
TimeSeries MakeTraceInstance(int label, const GeneratorOptions& options,
                             Rng* rng);

/// Trigonometric Wave dataset (§V-I): sine (label 0) and cosine (label 1)
/// over exactly one period, sampled with `length` points.
struct TrigWaveOptions {
  size_t num_instances = 1000;
  uint64_t seed = 2023;
  size_t length = 400;        ///< points sampled within one period
  double noise_stddev = 0.05;
  bool z_normalize = true;
  /// When > 0, samples `subset_prefix` points of a `length`-point period,
  /// i.e. the Fig. 17 regime where the visible shape changes with length.
  size_t subset_prefix = 0;
};

Dataset MakeTrigWaveDataset(const TrigWaveOptions& options);

/// Returns the noiseless class template (useful as ground-truth shape).
std::vector<double> SymbolsTemplate(int label, size_t length = 398);
std::vector<double> TraceTemplate(int label, size_t length = 275);

/// Applies a smooth random monotone time warp; exposed for testing and for
/// building custom generators. `strength` in [0, 0.5) controls how far the
/// warp control points may drift from the identity mapping.
std::vector<double> SmoothTimeWarp(const std::vector<double>& values,
                                   double strength, Rng* rng);

}  // namespace privshape::series

#endif  // PRIVSHAPE_SERIES_GENERATORS_H_
