#include "ldp/accountant.h"

#include <algorithm>

#include "common/csv.h"

namespace privshape::ldp {

Status PrivacyAccountant::Charge(const std::string& population,
                                 double epsilon) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("cannot charge a negative budget");
  }
  charges_[population] += epsilon;
  return Status::Ok();
}

double PrivacyAccountant::PopulationEpsilon(
    const std::string& population) const {
  auto it = charges_.find(population);
  return it == charges_.end() ? 0.0 : it->second;
}

double PrivacyAccountant::UserLevelEpsilon() const {
  double mx = 0.0;
  for (const auto& [_, eps] : charges_) mx = std::max(mx, eps);
  return mx;
}

Status PrivacyAccountant::CheckWithinBudget(double budget,
                                            double tolerance) const {
  double spent = UserLevelEpsilon();
  if (spent > budget + tolerance) {
    return Status::FailedPrecondition(
        "user-level budget exceeded: spent " + FormatDouble(spent) +
        " > budget " + FormatDouble(budget));
  }
  return Status::Ok();
}

}  // namespace privshape::ldp
