#include "telemetry/stats_endpoint.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace privshape::telemetry {

namespace {

/// Scrape requests are tiny ("GET /metrics HTTP/1.1" + headers); anything
/// larger is not a scraper and gets dropped.
constexpr size_t kMaxRequestBytes = 8 * 1024;

/// Extracts the request path from an HTTP request line ("GET <path>
/// HTTP/1.x"). A bare-newline request ("/metrics\n" from netcat) is
/// accepted too: the first whitespace-free token is the path.
std::string_view RequestPath(std::string_view request) {
  size_t line_end = request.find_first_of("\r\n");
  std::string_view line = request.substr(0, line_end);
  size_t first_space = line.find(' ');
  if (first_space == std::string_view::npos) {
    return line.empty() ? std::string_view("/") : line;
  }
  std::string_view rest = line.substr(first_space + 1);
  size_t second_space = rest.find(' ');
  std::string_view path = rest.substr(0, second_space);
  return path.empty() ? std::string_view("/") : path;
}

}  // namespace

/// One in-flight scrape: buffered request bytes in, response bytes out.
struct StatsEndpoint::Client {
  UniqueFd fd;
  std::string request;
  std::string response;     ///< empty until the request line arrived
  size_t response_sent = 0;
  bool want_write = false;
};

StatsEndpoint::StatsEndpoint(Poller* poller, uint64_t tag_base,
                             ContentFn content)
    : poller_(poller), tag_base_(tag_base), content_(std::move(content)) {}

StatsEndpoint::~StatsEndpoint() { Close(); }

Status StatsEndpoint::Start(const std::string& host, uint16_t port) {
  if (listener_.valid()) return Status::Ok();
  auto listener = TcpListen(host, port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  PRIVSHAPE_RETURN_IF_ERROR(SetNonBlocking(listener_.get()));
  auto bound = LocalPort(listener_.get());
  if (!bound.ok()) return bound.status();
  port_ = *bound;
  clients_.resize(kMaxClients);
  return poller_->Add(listener_.get(), tag_base_);
}

void StatsEndpoint::Close() {
  if (!listener_.valid()) return;
  poller_->Remove(listener_.get());
  listener_.Reset();
  for (size_t slot = 0; slot < clients_.size(); ++slot) CloseClient(slot);
  clients_.clear();
}

void StatsEndpoint::HandleEvent(const PollEvent& event) {
  if (!listening() || !Owns(event.tag)) return;
  if (event.tag == tag_base_) {
    AcceptPending();
    return;
  }
  HandleClient(static_cast<size_t>(event.tag - tag_base_ - 1), event);
}

void StatsEndpoint::AcceptPending() {
  while (true) {
    auto accepted = TcpAccept(listener_.get());
    if (!accepted.ok() || !accepted->valid()) return;
    UniqueFd fd = std::move(*accepted);
    if (!SetNonBlocking(fd.get()).ok()) continue;
    // First free slot; a scrape burst beyond kMaxClients is refused by
    // the immediate close (the scraper retries), never by blocking the
    // event loop.
    size_t slot = clients_.size();
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i] == nullptr) {
        slot = i;
        break;
      }
    }
    if (slot == clients_.size()) continue;  // full: fd closes on scope exit
    auto client = std::make_unique<Client>();
    client->fd = std::move(fd);
    if (!poller_->Add(client->fd.get(), tag_base_ + 1 + slot).ok()) continue;
    clients_[slot] = std::move(client);
  }
}

void StatsEndpoint::CloseClient(size_t slot) {
  if (slot >= clients_.size() || clients_[slot] == nullptr) return;
  poller_->Remove(clients_[slot]->fd.get());
  clients_[slot] = nullptr;
}

void StatsEndpoint::HandleClient(size_t slot, const PollEvent& event) {
  if (slot >= clients_.size() || clients_[slot] == nullptr) return;
  Client& client = *clients_[slot];
  if (event.error) {
    CloseClient(slot);
    return;
  }
  if (event.readable && client.response.empty()) {
    char buf[4096];
    while (true) {
      ssize_t n = ::recv(client.fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        client.request.append(buf, static_cast<size_t>(n));
        if (client.request.size() > kMaxRequestBytes) {
          CloseClient(slot);
          return;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or a hard error before a complete request: nothing to serve.
      if (n == 0 && client.request.find('\n') == std::string::npos) {
        CloseClient(slot);
        return;
      }
      break;
    }
    // A complete request line (or a blank-line-terminated header block)
    // is enough — scrape responses don't depend on headers.
    if (client.request.find('\n') != std::string::npos) {
      RespondAndFlush(slot);
    }
  }
  if (slot < clients_.size() && clients_[slot] != nullptr &&
      event.writable && !clients_[slot]->response.empty()) {
    RespondAndFlush(slot);
  }
}

void StatsEndpoint::RespondAndFlush(size_t slot) {
  Client& client = *clients_[slot];
  if (client.response.empty()) {
    std::string_view path = RequestPath(client.request);
    std::string body = content_ ? content_(path) : std::string();
    const char* content_type = path == "/metrics"
                                   ? "text/plain; version=0.0.4"
                                   : "application/json";
    client.response = "HTTP/1.0 200 OK\r\nContent-Type: ";
    client.response += content_type;
    client.response += "\r\nContent-Length: " + std::to_string(body.size());
    client.response += "\r\nConnection: close\r\n\r\n";
    client.response += body;
  }
  while (client.response_sent < client.response.size()) {
    std::string_view rest =
        std::string_view(client.response).substr(client.response_sent);
    ssize_t n = ::send(client.fd.get(), rest.data(), rest.size(),
                       MSG_NOSIGNAL);
    if (n >= 0) {
      client.response_sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Socket full: arm EPOLLOUT and resume on the next event.
      if (!client.want_write) {
        client.want_write = true;
        poller_->Modify(client.fd.get(), tag_base_ + 1 + slot, true);
      }
      return;
    }
    CloseClient(slot);
    return;
  }
  CloseClient(slot);  // response fully flushed: one-shot connection
}

}  // namespace privshape::telemetry
