#include "distance/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace privshape::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rolling two-row DTW DP over the (n+1) x (m+1) table. `scratch` may be
/// nullptr (a local scratch is used). `cutoff` enables early abandoning:
/// every warping path visits every row i and per-cell costs are
/// non-negative, so the final distance is >= min_j D[i][j]; once a row's
/// minimum reaches the cutoff the result cannot be below it and the scan
/// returns +infinity. cutoff = +infinity never abandons, which keeps this
/// one kernel bit-identical to the historical allocating implementation.
template <typename Cost>
double DtwImpl(size_t n, size_t m, int band, const Cost& cost,
               DtwScratch* scratch, double cutoff) {
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  DtwScratch local;
  DtwScratch* s = scratch != nullptr ? scratch : &local;
  s->prev.assign(m + 1, kInf);
  s->curr.assign(m + 1, kInf);
  s->prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(s->curr.begin(), s->curr.end(), kInf);
    size_t lo = 1, hi = m;
    if (band >= 0) {
      // Sakoe-Chiba: |i - j| <= band, after scaling for unequal lengths.
      double scaled = static_cast<double>(i) * static_cast<double>(m) /
                      static_cast<double>(n);
      lo = static_cast<size_t>(
          std::max(1.0, std::ceil(scaled - static_cast<double>(band))));
      hi = static_cast<size_t>(std::min(
          static_cast<double>(m),
          std::floor(scaled + static_cast<double>(band))));
    }
    double row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      double c = cost(i - 1, j - 1);
      double best = std::min({s->prev[j], s->curr[j - 1], s->prev[j - 1]});
      s->curr[j] = c + best;
      row_min = std::min(row_min, s->curr[j]);
    }
    if (row_min >= cutoff) return kInf;
    std::swap(s->prev, s->curr);
  }
  return s->prev[m];
}

/// Rolling two-row Levenshtein DP. D[i][j] >= D[i-1][j-1], so row minima
/// never decrease and the same row-minimum abandon as DtwImpl is exact.
double EditImpl(SymbolView a, SymbolView b, DtwScratch* scratch,
                double cutoff) {
  size_t n = a.size(), m = b.size();
  DtwScratch local;
  DtwScratch* s = scratch != nullptr ? scratch : &local;
  s->prev.resize(m + 1);
  s->curr.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) s->prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    s->curr[0] = static_cast<double>(i);
    double row_min = s->curr[0];
    for (size_t j = 1; j <= m; ++j) {
      double sub = s->prev[j - 1] + (a[i - 1] == b[j - 1] ? 0.0 : 1.0);
      s->curr[j] = std::min({s->prev[j] + 1.0, s->curr[j - 1] + 1.0, sub});
      row_min = std::min(row_min, s->curr[j]);
    }
    if (row_min >= cutoff) return kInf;
    std::swap(s->prev, s->curr);
  }
  return s->prev[m];
}

/// DTW over views, shared by the Sequence wrapper, the scratch overload,
/// and the bounded variant so all three run the identical kernel.
double DtwView(SymbolView a, SymbolView b, int band, DtwScratch* scratch,
               double cutoff) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) {
    // Align the empty word against everything: charge each symbol's level.
    SymbolView s = a.empty() ? b : a;
    double total = 0.0;
    for (Symbol x : s) total += static_cast<double>(x) + 1.0;
    return total;
  }
  return DtwImpl(
      a.size(), b.size(), band,
      [&](size_t i, size_t j) {
        return std::abs(static_cast<double>(a[i]) -
                        static_cast<double>(b[j]));
      },
      scratch, cutoff);
}

double EuclideanView(SymbolView a, SymbolView b) {
  size_t n = std::max(a.size(), b.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Pad the shorter word with its last symbol (empty words pad with 0).
    double x = i < a.size()
                   ? static_cast<double>(a[i])
                   : (a.empty() ? 0.0
                                : static_cast<double>(a[a.size() - 1]));
    double y = i < b.size()
                   ? static_cast<double>(b[i])
                   : (b.empty() ? 0.0
                                : static_cast<double>(b[b.size() - 1]));
    acc += (x - y) * (x - y);
  }
  return std::sqrt(acc);
}

double HausdorffView(SymbolView a, SymbolView b) {
  if (a.empty() || b.empty()) return a.size() == b.size() ? 0.0 : kInf;
  auto point = [](SymbolView s, size_t i) {
    double x = s.size() > 1 ? static_cast<double>(i) /
                                  static_cast<double>(s.size() - 1)
                            : 0.0;
    return std::pair<double, double>(x, static_cast<double>(s[i]));
  };
  auto directed = [&](SymbolView p, SymbolView q) {
    double worst = 0.0;
    for (size_t i = 0; i < p.size(); ++i) {
      auto [xi, yi] = point(p, i);
      double best = kInf;
      for (size_t j = 0; j < q.size(); ++j) {
        auto [xj, yj] = point(q, j);
        double d = std::hypot(xi - xj, yi - yj);
        best = std::min(best, d);
      }
      worst = std::max(worst, best);
    }
    return worst;
  };
  return std::max(directed(a, b), directed(b, a));
}

class DtwDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return DtwSymbolic(a, b);
  }
  double Distance(SymbolView a, SymbolView b,
                  DtwScratch* scratch) const override {
    return DtwView(a, b, /*band=*/-1, scratch, kInf);
  }
  double DistanceBounded(SymbolView a, SymbolView b, double cutoff,
                         DtwScratch* scratch) const override {
    return DtwView(a, b, /*band=*/-1, scratch, cutoff);
  }
  Metric metric() const override { return Metric::kDtw; }
};

class SedDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return EditDistance(a, b);
  }
  double Distance(SymbolView a, SymbolView b,
                  DtwScratch* scratch) const override {
    return EditImpl(a, b, scratch, kInf);
  }
  double DistanceBounded(SymbolView a, SymbolView b, double cutoff,
                         DtwScratch* scratch) const override {
    return EditImpl(a, b, scratch, cutoff);
  }
  Metric metric() const override { return Metric::kSed; }
};

class EuclideanDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return EuclideanSymbolic(a, b);
  }
  double Distance(SymbolView a, SymbolView b,
                  DtwScratch* /*scratch*/) const override {
    return EuclideanView(a, b);
  }
  Metric metric() const override { return Metric::kEuclidean; }
};

class HausdorffDistance : public SequenceDistance {
 public:
  double Distance(const Sequence& a, const Sequence& b) const override {
    return HausdorffSymbolic(a, b);
  }
  double Distance(SymbolView a, SymbolView b,
                  DtwScratch* /*scratch*/) const override {
    return HausdorffView(a, b);
  }
  Metric metric() const override { return Metric::kHausdorff; }
};

}  // namespace

Result<Metric> MetricFromString(const std::string& name) {
  if (name == "dtw") return Metric::kDtw;
  if (name == "sed" || name == "edit") return Metric::kSed;
  if (name == "euclidean" || name == "l2") return Metric::kEuclidean;
  if (name == "hausdorff") return Metric::kHausdorff;
  return Status::InvalidArgument("unknown distance metric: " + name);
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kDtw:
      return "dtw";
    case Metric::kSed:
      return "sed";
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kHausdorff:
      return "hausdorff";
  }
  return "?";
}

std::unique_ptr<SequenceDistance> MakeDistance(Metric metric) {
  switch (metric) {
    case Metric::kDtw:
      return std::make_unique<DtwDistance>();
    case Metric::kSed:
      return std::make_unique<SedDistance>();
    case Metric::kEuclidean:
      return std::make_unique<EuclideanDistance>();
    case Metric::kHausdorff:
      return std::make_unique<HausdorffDistance>();
  }
  return nullptr;
}

double DtwSymbolic(const Sequence& a, const Sequence& b, int band) {
  return DtwView(a, b, band, nullptr, kInf);
}

double DtwSymbolic(SymbolView a, SymbolView b, int band,
                   DtwScratch* scratch) {
  return DtwView(a, b, band, scratch, kInf);
}

double DtwSymbolicBounded(SymbolView a, SymbolView b, int band, double cutoff,
                          DtwScratch* scratch) {
  return DtwView(a, b, band, scratch, cutoff);
}

double EditDistance(const Sequence& a, const Sequence& b) {
  return EditImpl(a, b, nullptr, kInf);
}

double EditDistance(SymbolView a, SymbolView b, DtwScratch* scratch) {
  return EditImpl(a, b, scratch, kInf);
}

double EditDistanceBounded(SymbolView a, SymbolView b, double cutoff,
                           DtwScratch* scratch) {
  return EditImpl(a, b, scratch, cutoff);
}

double EuclideanSymbolic(const Sequence& a, const Sequence& b) {
  return EuclideanView(a, b);
}

double HausdorffSymbolic(const Sequence& a, const Sequence& b) {
  return HausdorffView(a, b);
}

double DtwNumeric(const std::vector<double>& a, const std::vector<double>& b,
                  int band) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return kInf;
  return DtwImpl(
      a.size(), b.size(), band,
      [&](size_t i, size_t j) { return std::abs(a[i] - b[j]); },
      /*scratch=*/nullptr, kInf);
}

Result<double> EuclideanNumeric(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "EuclideanNumeric requires equal-length inputs");
  }
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(acc);
}

}  // namespace privshape::dist
