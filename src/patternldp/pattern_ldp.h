/// \file
/// Module `patternldp` — the PatternLDP competitor baseline in its
/// user-level, offline adaptation (§V-B1): PID-scored importance sampling,
/// Piecewise-Mechanism perturbation of the sampled anchors, linear
/// interpolation in between. Invariant: one series consumes exactly the
/// single user-level budget epsilon, split across its sampled anchors.

#ifndef PRIVSHAPE_PATTERNLDP_PATTERN_LDP_H_
#define PRIVSHAPE_PATTERNLDP_PATTERN_LDP_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "series/time_series.h"

namespace privshape::pldp {

/// Configuration for the user-level, offline adaptation of PatternLDP
/// (§V-B1 of the PrivShape paper).
///
/// The original PatternLDP satisfies omega-event privacy online. The
/// adaptation (as the paper describes): the whole series shares one budget
/// `epsilon`; the PID control error gives every point an importance score;
/// the most important `sample_fraction` of points are sampled; the budget
/// is divided across sampled points proportionally to their scores; each
/// sampled value (clipped to [-clip, clip], rescaled to [-1, 1]) is
/// perturbed with the Piecewise Mechanism; unsampled points are linearly
/// interpolated between perturbed anchors.
struct PatternLdpConfig {
  double epsilon = 4.0;
  double kp = 0.9;   ///< PID proportional gain (PatternLDP defaults)
  double ki = 0.1;   ///< PID integral gain
  double kd = 0.0;   ///< PID derivative gain
  double sample_fraction = 0.1;  ///< fraction of points kept as anchors
  size_t min_samples = 4;        ///< never sample fewer anchors than this
  double clip = 3.0;             ///< z-score clipping bound
};

/// PatternLDP perturbs each user's series independently.
class PatternLdp {
 public:
  static Result<PatternLdp> Create(const PatternLdpConfig& config);

  /// Returns the perturbed series (same length as the input). The input is
  /// assumed z-normalized; the output stays on the same scale.
  Result<std::vector<double>> PerturbSeries(const std::vector<double>& values,
                                            Rng* rng) const;

  /// Applies PerturbSeries to every instance; labels are preserved (the
  /// server receives labels in the classification task, as in the paper's
  /// PatternLDP+RF pipeline).
  Result<series::Dataset> PerturbDataset(const series::Dataset& dataset,
                                         Rng* rng) const;

  /// Same as PerturbDataset but runs users concurrently on `pool` — the
  /// paper's "we treat all the users' operations concurrently" (§V-F).
  /// Each user gets an independent Rng derived from `seed`, so the result
  /// is deterministic for a fixed seed regardless of thread count (and
  /// differs from the sequential path only in stream assignment).
  Result<series::Dataset> PerturbDatasetParallel(
      const series::Dataset& dataset, ThreadPool* pool, uint64_t seed) const;

  const PatternLdpConfig& config() const { return config_; }

 private:
  explicit PatternLdp(const PatternLdpConfig& config) : config_(config) {}

  PatternLdpConfig config_;
};

}  // namespace privshape::pldp

#endif  // PRIVSHAPE_PATTERNLDP_PATTERN_LDP_H_
