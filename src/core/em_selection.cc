#include "core/em_selection.h"

#include <algorithm>

#include "ldp/exponential.h"

namespace privshape::core {

Result<std::vector<double>> EmSelectionCounts(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, bool prefix_compare, Rng* rng) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to select among");
  }
  auto em = ldp::ExponentialMechanism::Create(epsilon);
  if (!em.ok()) return em.status();
  auto distance = dist::MakeDistance(metric);

  std::vector<double> counts(candidates.size(), 0.0);
  std::vector<double> distances(candidates.size());
  for (size_t user : population) {
    if (user >= sequences.size()) {
      return Status::OutOfRange("population index outside dataset");
    }
    const Sequence& seq = sequences[user];
    for (size_t cand = 0; cand < candidates.size(); ++cand) {
      const Sequence& shape = candidates[cand];
      if (prefix_compare && seq.size() > shape.size()) {
        Sequence prefix(seq.begin(),
                        seq.begin() + static_cast<long>(shape.size()));
        distances[cand] = distance->Distance(prefix, shape);
      } else {
        distances[cand] = distance->Distance(seq, shape);
      }
    }
    std::vector<double> scores = ldp::ScoresFromDistances(distances);
    auto pick = em->Select(scores, rng);
    if (!pick.ok()) return pick.status();
    counts[*pick] += 1.0;
  }
  return counts;
}

}  // namespace privshape::core
