// Fig. 17: sine-vs-cosine classification when the visible shape changes
// with length — prefixes of 200..1000 points out of a 1000-point period.
// Early prefixes make the classes partially coincide, stressing both
// mechanisms; PrivShape should remain reasonable while PatternLDP
// fluctuates near chance.

#include <iostream>

#include "bench/harness.h"
#include "eval/ari.h"
#include "eval/random_forest.h"
#include "sax/paa.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

namespace {

std::vector<std::vector<double>> PaaFeatures(
    const privshape::series::Dataset& dataset, int w) {
  std::vector<std::vector<double>> out;
  for (const auto& inst : dataset.instances) {
    auto paa = privshape::sax::PiecewiseAggregate(inst.values, w);
    out.push_back(paa.ok() ? *paa : inst.values);
  }
  return out;
}

std::vector<int> Labels(const privshape::series::Dataset& dataset) {
  std::vector<int> out;
  for (const auto& inst : dataset.instances) out.push_back(inst.label);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2000, 2);
  double epsilon = args.GetDouble("epsilon", 4.0);

  pb::PrintTitle("Fig. 17: accuracy vs prefix length, changing shape "
                 "(sine/cosine prefixes, eps=" +
                 privshape::FormatDouble(epsilon) + ")");
  pb::PrintHeader({"prefix", "PrivShape", "PatternLDP+RF", "GroundTruth-RF"});
  auto csv = pb::MaybeCsv("fig17_length_diff_shape");
  if (csv) csv->WriteHeader({"prefix", "privshape", "patternldp", "ground"});

  for (size_t prefix : {200u, 400u, 600u, 800u, 1000u}) {
    double ps = 0, pl_acc = 0, gt = 0;
    for (int trial = 0; trial < scale.trials; ++trial) {
      uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
      privshape::series::TrigWaveOptions gen;
      gen.num_instances = scale.users;
      gen.length = 1000;
      gen.subset_prefix = prefix;
      gen.seed = seed;
      auto dataset = privshape::series::MakeTrigWaveDataset(gen);
      privshape::series::Dataset train, test;
      privshape::series::TrainTestSplit(dataset, 0.8, seed, &train, &test);

      privshape::core::TransformOptions transform;
      transform.t = 4;
      transform.w = 10;
      privshape::core::MechanismConfig config = pb::TraceConfig(epsilon, seed);
      config.k = 2;
      config.num_classes = 2;
      ps += pb::RunPrivShapeClassification(train, test, transform, config)
                .accuracy;

      pb::PatternLdpBenchOptions pl;
      pl.epsilon = epsilon;
      pl.seed = seed;
      pl.rf_feature_paa = static_cast<int>(prefix / 25);
      pl_acc += pb::RunPatternLdpRfClassification(train, test, pl, 2)
                    .accuracy;

      privshape::eval::RandomForest::Options rf;
      rf.num_trees = 15;
      rf.seed = seed;
      auto forest = privshape::eval::RandomForest::Fit(
          PaaFeatures(train, static_cast<int>(prefix / 25)), Labels(train),
          rf);
      if (forest.ok()) {
        auto acc = privshape::eval::Accuracy(
            Labels(test),
            forest->PredictBatch(
                PaaFeatures(test, static_cast<int>(prefix / 25))));
        gt += acc.ok() ? *acc : 0.0;
      }
    }
    double n = scale.trials;
    std::vector<std::string> row = {std::to_string(prefix),
                                    privshape::FormatDouble(ps / n, 4),
                                    privshape::FormatDouble(pl_acc / n, 4),
                                    privshape::FormatDouble(gt / n, 4)};
    pb::PrintRow(row);
    if (csv) csv->WriteRow(row);
  }

  std::cout << "\nExpected shape (paper Fig. 17): PrivShape stays "
               "reasonable at every prefix; PatternLDP fluctuates strongly "
               "when the prefixes make the classes partially coincide.\n";
  return 0;
}
