/// \file
/// `privshape_collector` — end-to-end collection server over a simulated
/// fleet. Synthesizes (or loads) a fleet of users, runs the full
/// Algorithm 2 protocol through the sharded multi-threaded
/// RoundCoordinator (streaming ingestion by default, optionally merged
/// across several independent collectors), prints the extracted shapes
/// and throughput metrics, and optionally verifies the determinism
/// contract against the single-threaded core pipeline.
///
/// Examples:
///   privshape_collector --dataset trace --users 1000000 --threads 8
///   privshape_collector --users 20000 --threads 4 --check-determinism
///       --json metrics.json
///   privshape_collector --csv data.csv --epsilon 2 --users 50000
///   privshape_collector --users 100000 --collectors 4 --queue-depth 16
///   privshape_collector --users 100000 --ingest barrier   # old path
///   privshape_collector --num-classes 3 --users 50000     # labeled shapes
///   privshape_collector --csv data.csv --labels labels.csv --num-classes 4
///   privshape_collector --csv data.csv --label-column 0 --num-classes 4

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "collector/client_fleet.h"
#include "collector/multi_collector.h"
#include "collector/round_coordinator.h"
#include "collector/shapes_io.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/shutdown.h"
#include "core/pipeline.h"
#include "core/privshape.h"
#include "telemetry/trace.h"

namespace {

using namespace privshape;  // NOLINT(build/namespaces)

struct FleetSetup {
  collector::ClientFleet::WordFn word_fn;
  collector::ClientFleet::LabelFn label_fn;  ///< null = unlabeled fleet
  core::MechanismConfig config;
  std::string description;
};

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open labels file: " + path);
  }
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  // bad() is the underlying-I/O-error bit; eof alone is the normal end.
  if (in.bad()) {
    return Status::Internal("failed reading labels file: " + path);
  }
  return text;
}

/// Splits column `column` of the ingested CSV rows off as integer class
/// labels (validated against [0, num_classes) right here, at ingest) and
/// leaves the remaining cells as the series values.
Result<std::vector<int>> ExtractLabelColumn(
    std::vector<std::vector<double>>* rows, int column, int num_classes) {
  std::vector<int> labels;
  labels.reserve(rows->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    auto& row = (*rows)[i];
    if (column >= static_cast<int>(row.size())) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(i) + " has " +
          std::to_string(row.size()) + " cells; --label-column " +
          std::to_string(column) + " is out of range");
    }
    double raw = row[static_cast<size_t>(column)];
    if (raw != std::floor(raw)) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(i) + ": label cell " +
          std::to_string(raw) + " is not an integer");
    }
    if (raw < 0.0 || raw >= static_cast<double>(num_classes)) {
      // Format the double directly: casting an out-of-long-long value
      // (e.g. 1e300) for the message would be UB.
      return Status::OutOfRange(
          "CSV row " + std::to_string(i) + ": label " + FormatDouble(raw) +
          " outside [0, " + std::to_string(num_classes) + ")");
    }
    labels.push_back(static_cast<int>(raw));
    row.erase(row.begin() + column);
    if (row.empty()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(i) +
          " has no series values left after --label-column");
    }
  }
  return labels;
}

Result<FleetSetup> BuildSetup(const CliArgs& args) {
  FleetSetup setup;
  // Strict parsing: a typo'd numeric flag ("--epsilon 2,5") must fail
  // loudly, not silently run the default experiment.
  auto seed_flag = args.GetIntStatus("seed", 2023);
  if (!seed_flag.ok()) return seed_flag.status();
  uint64_t seed = static_cast<uint64_t>(*seed_flag);
  std::string dataset = args.GetString("dataset", "trace");
  bool symbols = dataset == "symbols";

  // Paper-default mechanism configs (§V-B3), shared with the daemon and
  // loadgen so a dataset name means the same mechanism everywhere. Any
  // dataset name other than "symbols" keeps the trace defaults (a --csv
  // run may name its dataset freely).
  auto base =
      collector::GeneratedDatasetConfig(symbols ? "symbols" : "trace");
  if (!base.ok()) return base.status();
  core::MechanismConfig config = *base;
  auto epsilon = args.GetDoubleStatus("epsilon", 4.0);
  if (!epsilon.ok()) return epsilon.status();
  config.epsilon = *epsilon;
  config.seed = seed;
  auto k = args.GetIntStatus("k", config.k);
  if (!k.ok()) return k.status();
  config.k = *k;
  auto c = args.GetIntStatus("c", config.c);
  if (!c.ok()) return c.status();
  config.c = *c;

  // Classification: --num-classes N > 0 switches the refinement round to
  // P_e (OUE over candidate x class cells) and requires per-user labels.
  auto classes_flag = args.GetIntStatus("num_classes", 0);
  if (!classes_flag.ok()) return classes_flag.status();
  classes_flag = args.GetIntStatus("num-classes", *classes_flag);
  if (!classes_flag.ok()) return classes_flag.status();
  if (*classes_flag < 0) {
    return Status::InvalidArgument("--num-classes must be >= 0, got " +
                                   std::to_string(*classes_flag));
  }
  config.num_classes = *classes_flag;
  setup.config = config;

  std::string labels_file = args.GetString("labels", "");
  auto label_column_flag = args.GetIntStatus("label_column", -1);
  if (!label_column_flag.ok()) return label_column_flag.status();
  label_column_flag = args.GetIntStatus("label-column", *label_column_flag);
  if (!label_column_flag.ok()) return label_column_flag.status();
  int label_column = *label_column_flag;
  if (label_column < 0 &&
      (args.Has("label-column") || args.Has("label_column"))) {
    return Status::InvalidArgument("--label-column must be >= 0, got " +
                                   std::to_string(label_column));
  }
  if ((!labels_file.empty() || label_column >= 0) &&
      config.num_classes == 0) {
    return Status::InvalidArgument(
        "--labels/--label-column require --num-classes > 0");
  }
  if (!labels_file.empty() && label_column >= 0) {
    return Status::InvalidArgument(
        "--labels and --label-column are mutually exclusive");
  }

  std::string csv = args.GetString("csv", "");
  if (!csv.empty()) {
    auto rows = ReadCsvDoubles(csv);
    if (!rows.ok()) return rows.status();
    if (rows->empty()) {
      return Status::InvalidArgument("CSV dataset is empty: " + csv);
    }
    std::vector<int> labels;
    if (config.num_classes > 0) {
      if (label_column >= 0) {
        auto extracted =
            ExtractLabelColumn(&*rows, label_column, config.num_classes);
        if (!extracted.ok()) return extracted.status();
        labels = std::move(*extracted);
      } else if (!labels_file.empty()) {
        auto text = ReadFileToString(labels_file);
        if (!text.ok()) return text.status();
        auto parsed = collector::ParseLabelsCsv(*text, config.num_classes);
        if (!parsed.ok()) return parsed.status();
        labels = std::move(*parsed);
        if (labels.size() != rows->size()) {
          return Status::InvalidArgument(
              labels_file + " has " + std::to_string(labels.size()) +
              " labels for " + std::to_string(rows->size()) + " CSV rows");
        }
      } else {
        return Status::InvalidArgument(
            "--num-classes with --csv requires --labels FILE or "
            "--label-column N");
      }
    }
    core::TransformOptions transform;
    transform.t = config.t;
    transform.w = symbols ? 25 : 10;
    std::vector<Sequence> words;
    words.reserve(rows->size());
    for (size_t i = 0; i < rows->size(); ++i) {
      auto word = core::TransformSeries((*rows)[i], transform);
      if (!word.ok()) {
        // Fail loudly: a fleet of placeholder words would "succeed" end
        // to end while never ingesting the dataset.
        return Status::InvalidArgument(
            "CSV row " + std::to_string(i) + " of " + csv +
            " cannot be transformed (" + word.status().ToString() + ")");
      }
      words.push_back(std::move(*word));
    }
    setup.description = "csv:" + csv;
    // Tile the CSV rows (and their labels, same modulo) across the
    // requested fleet size.
    setup.word_fn = collector::ClientFleet::TiledWords(std::move(words));
    setup.label_fn = collector::ClientFleet::TiledLabels(std::move(labels));
    return setup;
  }

  if (!labels_file.empty() || label_column >= 0) {
    return Status::InvalidArgument(
        "--labels/--label-column require --csv (generated fleets label "
        "themselves)");
  }
  auto words = collector::GeneratedWordSource(dataset, seed);
  if (!words.ok()) return words.status();
  if (config.num_classes > 0) {
    // Generated fleets are self-labeling: user u's instance is synthesized
    // from class u % dataset-classes. Reject a class count the synthesized
    // labels would overflow — at setup, not deep inside the P_e round.
    auto dataset_classes = collector::GeneratedNumClasses(dataset);
    if (!dataset_classes.ok()) return dataset_classes.status();
    if (config.num_classes < *dataset_classes) {
      return Status::OutOfRange(
          "generated dataset '" + dataset + "' has " +
          std::to_string(*dataset_classes) +
          " classes; --num-classes must be >= that (got " +
          std::to_string(config.num_classes) + ")");
    }
    auto labels = collector::GeneratedLabelSource(dataset);
    if (!labels.ok()) return labels.status();
    setup.label_fn = std::move(*labels);
  }
  setup.description = "generated:" + dataset;
  setup.word_fn = std::move(*words);
  return setup;
}

// Shape printing/comparison/JSON live in collector/shapes_io.h, shared
// with the daemon and loadgen binaries.
using collector::PrintShapes;
using collector::SameShapes;
using collector::ShapesJson;

/// Non-negative flag value, parsed strictly: malformed or negative input
/// is an InvalidArgument (which Main turns into a fatal CLI error), never
/// a silent fallback or a wrap through size_t to ~2^64.
Result<size_t> GetCount(const CliArgs& args, const std::string& name,
                        int def) {
  auto value = args.GetIntStatus(name, def);
  if (!value.ok()) return value.status();
  if (*value < 0) {
    return Status::InvalidArgument("--" + name + " must be >= 0");
  }
  return static_cast<size_t>(*value);
}

/// Serves the whole protocol with `collectors` merged sites (a single
/// site runs inline with no site threads).
Result<core::MechanismResult> Serve(const core::MechanismConfig& config,
                                    const collector::CollectorOptions& options,
                                    ThreadPool* pool, size_t collectors,
                                    const collector::ClientFleet& fleet,
                                    collector::CollectorMetrics* metrics) {
  return collector::MultiCollector(config, options, pool, collectors)
      .Collect(fleet, metrics);
}

int Main(int argc, char** argv) {
  CliArgs args(argc, argv);
  // SIGINT/SIGTERM mid-protocol: stop producing reports, drain the
  // queues, record the partial round, still write --json, exit 3.
  InstallShutdownHandler();
  collector::CollectorOptions options;
  // Fail fast on any malformed count flag, naming the flag. The dashed
  // and underscored spellings of the batch/queue flags are aliases
  // (the dashed form wins when both are given).
  auto users_flag = GetCount(args, "users", 100000);
  auto collectors_flag = GetCount(args, "collectors", 1);
  auto shards_flag = GetCount(args, "shards", 0);
  auto batch_flag = GetCount(args, "batch_size", 256);
  auto queue_flag = GetCount(args, "queue_depth",
                             collector::CollectorOptions{}.queue_depth);
  for (const auto* flag : {&users_flag, &collectors_flag, &shards_flag,
                           &batch_flag, &queue_flag}) {
    if (!flag->ok()) {
      std::cerr << "privshape_collector: " << flag->status() << "\n";
      return 1;
    }
  }
  batch_flag = GetCount(args, "batch-size", static_cast<int>(*batch_flag));
  queue_flag = GetCount(args, "queue-depth", static_cast<int>(*queue_flag));
  if (!batch_flag.ok() || !queue_flag.ok()) {
    std::cerr << "privshape_collector: "
              << (!batch_flag.ok() ? batch_flag.status()
                                   : queue_flag.status())
              << "\n";
    return 1;
  }
  size_t users = *users_flag;
  size_t collectors = *collectors_flag;
  options.num_shards = *shards_flag;
  options.batch_size = *batch_flag;
  options.queue_depth = *queue_flag;
  size_t threads = ThreadsFromArgs(args);
  std::string ingest = args.GetString("ingest", "streaming");
  if (ingest != "streaming" && ingest != "barrier") {
    std::cerr << "privshape_collector: --ingest must be streaming|barrier\n";
    return 1;
  }
  options.streaming = ingest == "streaming";
  if (collectors == 0) {
    // 0 is meaningful for --shards (one per thread) and --queue-depth
    // (unbounded) but has no sane reading for collection sites.
    std::cerr << "privshape_collector: --collectors must be >= 1\n";
    return 1;
  }

  auto setup = BuildSetup(args);
  if (!setup.ok()) {
    std::cerr << "privshape_collector: " << setup.status() << "\n";
    return 1;
  }

  ThreadPool pool(threads);
  collector::ClientFleet fleet(users, setup->word_fn, setup->config.metric,
                               setup->config.seed, setup->label_fn);
  bool labeled = setup->config.num_classes > 0;
  bool check_determinism =
      args.Has("check-determinism") || args.Has("check_determinism");
  std::vector<Sequence> words;
  std::vector<int> labels;
  if (check_determinism) {
    // The check needs every word materialized anyway (the core reference
    // runs on them), so synthesize each word exactly ONCE up front and
    // serve all runs — the primary one included — from the materialized
    // fleet, instead of re-synthesizing per session and again for the
    // reference. FromWords tiles the captured list, so sessions move a
    // plain copy of the word, never re-run the generator.
    std::printf("determinism check: materializing %zu words...\n", users);
    words = fleet.MaterializeWords();
    labels = fleet.MaterializeLabels();
    fleet = collector::ClientFleet::FromWords(words, users,
                                              setup->config.metric,
                                              setup->config.seed, labels);
  }

  // --trace FILE: per-round spans across the protocol, written as
  // chrome://tracing JSON on exit.
  telemetry::ScopedTraceFile trace(args.GetString("trace", ""));

  std::printf(
      "privshape_collector: %s, %zu users, %zu threads, %zu shards, "
      "%zu collector(s), %s ingest (queue depth %zu)\n",
      setup->description.c_str(), users, pool.num_threads(),
      options.num_shards > 0 ? options.num_shards : pool.num_threads(),
      collectors, ingest.c_str(), options.queue_depth);
  collector::CollectorMetrics metrics;
  auto result =
      Serve(setup->config, options, &pool, collectors, fleet, &metrics);
  if (!result.ok()) {
    std::cerr << "privshape_collector: " << result.status() << "\n";
    if (result.status().code() != StatusCode::kCancelled) return 1;
    // Graceful shutdown: the run was abandoned, not failed — the rounds
    // recorded so far still make a usable metrics artifact.
    std::string cancel_json = args.GetString("json", "");
    if (!cancel_json.empty()) {
      Status written =
          collector::WriteJsonFile(metrics.ToJson(), cancel_json);
      if (!written.ok()) {
        std::cerr << "privshape_collector: " << written << "\n";
        return 1;
      }
      std::printf("metrics written to %s\n", cancel_json.c_str());
    }
    return 3;
  }
  PrintShapes(*result, labeled);
  std::printf("\n%-10s %10s %10s %10s %12s %10s\n", "stage", "users",
              "accepted", "rejected", "accepted/s", "seconds");
  for (const auto& round : metrics.rounds) {
    std::printf("%-10s %10zu %10zu %10zu %12.0f %10.3f\n",
                round.stage.c_str(), round.users, round.accepted,
                round.rejected, round.AcceptedPerSec(), round.seconds);
  }
  std::printf("total: %zu accepted reports in %.3fs (%.0f accepted/s)\n",
              metrics.TotalAccepted(), metrics.total_seconds,
              metrics.TotalAcceptedPerSec());

  std::string json = args.GetString("json", "");
  if (!json.empty()) {
    JsonValue doc = metrics.ToJson();
    doc.Set("shapes", ShapesJson(*result, labeled));
    Status written = collector::WriteJsonFile(doc, json);
    if (!written.ok()) {
      std::cerr << "privshape_collector: " << written << "\n";
      return 1;
    }
    std::printf("metrics written to %s\n", json.c_str());
  }

  if (check_determinism) {
    // Contract: byte-identical shapes vs. the single-threaded core
    // pipeline on the same words — for the barrier path, for streaming
    // at queue depths {1, 8, default}, for shard counts {1, 4, 16}, and
    // for {1, 3} merged collectors. `fleet` is already the materialized
    // word list, so the reference and every re-run below reuse the one
    // synthesis pass from above.
    core::PrivShape reference(setup->config);
    auto expected = reference.Run(words, labeled ? &labels : nullptr);
    if (!expected.ok()) {
      std::cerr << "privshape_collector: core pipeline failed: "
                << expected.status() << "\n";
      return 1;
    }
    bool all_ok = SameShapes(*expected, *result);
    std::printf("\n  collector(run) == core: %s\n",
                all_ok ? "OK" : "MISMATCH");
    auto check = [&](const collector::CollectorOptions& opt,
                     size_t check_collectors, const std::string& label) {
      auto got = Serve(setup->config, opt, &pool, check_collectors,
                       fleet, nullptr);
      bool ok = got.ok() && SameShapes(*expected, *got);
      std::printf("  collector(%s) == core: %s\n", label.c_str(),
                  ok ? "OK" : "MISMATCH");
      all_ok = all_ok && ok;
    };
    {
      collector::CollectorOptions opt = options;
      opt.streaming = false;
      check(opt, 1, "ingest=barrier");
    }
    std::vector<size_t> depths = {size_t{1}, size_t{8},
                                  collector::CollectorOptions{}.queue_depth};
    depths.erase(std::unique(depths.begin(), depths.end()), depths.end());
    for (size_t depth : depths) {
      collector::CollectorOptions opt = options;
      opt.streaming = true;
      opt.queue_depth = depth;
      check(opt, 1, "queue-depth=" + std::to_string(depth));
    }
    for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
      collector::CollectorOptions opt = options;
      opt.num_shards = shards;
      check(opt, 1, "shards=" + std::to_string(shards));
    }
    for (size_t sites : {size_t{1}, size_t{3}}) {
      check(options, sites, "collectors=" + std::to_string(sites));
    }
    if (!all_ok) {
      std::cerr << "privshape_collector: determinism contract VIOLATED\n";
      return 2;
    }
    std::printf("determinism contract holds\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
