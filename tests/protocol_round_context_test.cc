/// RoundContext hot path vs the string-decoding wire API: for all four
/// report kinds the two paths must emit byte-identical reports for the
/// same user (same seed, same word), errors must match, and the batched
/// ReportBatch codec must round-trip through the aggregation side.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ldp/exponential.h"
#include "protocol/messages.h"
#include "protocol/round_context.h"
#include "protocol/session.h"

namespace privshape {
namespace {

using proto::AnswerScratch;
using proto::CandidateRequest;
using proto::ClientSession;
using proto::Report;
using proto::ReportBatch;
using proto::ReportKind;
using proto::RoundContext;

Sequence WordFor(uint64_t user) {
  Rng rng(DeriveSeed(99, user));
  Sequence word;
  size_t len = 1 + rng.Index(7);
  for (size_t i = 0; i < len; ++i) {
    word.push_back(static_cast<Symbol>(rng.Index(4)));
  }
  return word;
}

ClientSession SessionFor(uint64_t user, dist::Metric metric) {
  return ClientSession(WordFor(user), metric, DeriveSeed(7, user));
}

CandidateRequest SampleRequest(double epsilon) {
  CandidateRequest request;
  request.level = 2;
  request.epsilon = epsilon;
  request.candidates = {{0, 1, 2}, {2, 1, 0}, {1, 1}, {3, 0, 2, 1}};
  return request;
}

/// The context-path report for one user (scratch shared across calls to
/// prove reuse does not leak state between users).
std::string ContextAnswer(const RoundContext& ctx, uint64_t user,
                          dist::Metric metric, AnswerScratch* scratch) {
  ClientSession session = SessionFor(user, metric);
  ReportBatch batch;
  Status st = session.AnswerTo(ctx, scratch, &batch);
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(batch.size(), 1u);
  return std::string(batch.view(0));
}

TEST(RoundContextTest, LengthAnswersByteIdenticalToStringPath) {
  auto ctx = RoundContext::Length(1, 10, 4.0);
  ASSERT_TRUE(ctx.ok());
  AnswerScratch scratch;
  for (uint64_t user = 0; user < 200; ++user) {
    auto wire = SessionFor(user, dist::Metric::kSed)
                    .AnswerLengthRequest(1, 10, 4.0);
    ASSERT_TRUE(wire.ok());
    EXPECT_EQ(ContextAnswer(*ctx, user, dist::Metric::kSed, &scratch),
              *wire)
        << "user " << user;
  }
}

TEST(RoundContextTest, OneValueLengthDomainIsDeterministicZero) {
  auto ctx = RoundContext::Length(3, 3, 4.0);
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(ctx->grr(), nullptr);
  AnswerScratch scratch;
  for (uint64_t user = 0; user < 20; ++user) {
    auto wire = SessionFor(user, dist::Metric::kSed)
                    .AnswerLengthRequest(3, 3, 4.0);
    ASSERT_TRUE(wire.ok());
    std::string got =
        ContextAnswer(*ctx, user, dist::Metric::kSed, &scratch);
    EXPECT_EQ(got, *wire);
    auto report = proto::DecodeReport(got);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->value, 0u);
  }
}

TEST(RoundContextTest, SubShapeAnswersByteIdenticalToStringPath) {
  auto ctx = RoundContext::SubShape(4, 6, 4.0, false);
  ASSERT_TRUE(ctx.ok());
  AnswerScratch scratch;
  for (uint64_t user = 0; user < 200; ++user) {
    auto wire = SessionFor(user, dist::Metric::kSed)
                    .AnswerSubShapeRequest(4, 6, 4.0, false);
    ASSERT_TRUE(wire.ok());
    EXPECT_EQ(ContextAnswer(*ctx, user, dist::Metric::kSed, &scratch),
              *wire)
        << "user " << user;
  }
}

TEST(RoundContextTest, SelectionAnswersByteIdenticalToStringPath) {
  CandidateRequest request = SampleRequest(6.0);
  std::string encoded = proto::EncodeCandidateRequest(request);
  for (dist::Metric metric :
       {dist::Metric::kDtw, dist::Metric::kSed, dist::Metric::kEuclidean,
        dist::Metric::kHausdorff}) {
    auto ctx = RoundContext::Selection(encoded, metric);
    ASSERT_TRUE(ctx.ok());
    AnswerScratch scratch;
    for (uint64_t user = 0; user < 150; ++user) {
      auto wire = SessionFor(user, metric).AnswerCandidateRequest(encoded);
      ASSERT_TRUE(wire.ok());
      EXPECT_EQ(ContextAnswer(*ctx, user, metric, &scratch), *wire)
          << dist::MetricName(metric) << " user " << user;
    }
  }
}

TEST(RoundContextTest, RefinementAnswersByteIdenticalToStringPath) {
  CandidateRequest request = SampleRequest(8.0);
  std::string encoded = proto::EncodeCandidateRequest(request);
  for (dist::Metric metric :
       {dist::Metric::kDtw, dist::Metric::kSed, dist::Metric::kEuclidean,
        dist::Metric::kHausdorff}) {
    auto ctx = RoundContext::Refinement(encoded, metric);
    ASSERT_TRUE(ctx.ok());
    AnswerScratch scratch;
    for (uint64_t user = 0; user < 150; ++user) {
      auto wire = SessionFor(user, metric).AnswerRefinementRequest(encoded);
      ASSERT_TRUE(wire.ok());
      EXPECT_EQ(ContextAnswer(*ctx, user, metric, &scratch), *wire)
          << dist::MetricName(metric) << " user " << user;
    }
  }
}

TEST(RoundContextTest, ClassRefinementAnswersByteIdenticalToStringPath) {
  proto::ClassRefineRequest request;
  request.epsilon = 5.0;
  request.num_classes = 4;
  request.candidates = SampleRequest(5.0).candidates;
  std::string encoded = proto::EncodeClassRefineRequest(request);
  for (dist::Metric metric : {dist::Metric::kDtw, dist::Metric::kSed}) {
    auto ctx = RoundContext::ClassRefinement(encoded, metric);
    ASSERT_TRUE(ctx.ok()) << ctx.status();
    EXPECT_EQ(ctx->kind(), ReportKind::kClassRefine);
    EXPECT_EQ(ctx->cells(), request.candidates.size() * 4);
    AnswerScratch scratch;
    for (uint64_t user = 0; user < 150; ++user) {
      int label = static_cast<int>(user % 4);
      ClientSession wire_session(WordFor(user), metric, DeriveSeed(7, user),
                                 label);
      auto wire = wire_session.AnswerClassRefineRequest(encoded);
      ASSERT_TRUE(wire.ok());
      ClientSession ctx_session(WordFor(user), metric, DeriveSeed(7, user),
                                label);
      ReportBatch batch;
      ASSERT_TRUE(ctx_session.AnswerTo(*ctx, &scratch, &batch).ok());
      EXPECT_EQ(std::string(batch.view(0)), *wire)
          << dist::MetricName(metric) << " user " << user;
    }
  }
}

TEST(RoundContextTest, ClassRefinementConstructionValidates) {
  proto::ClassRefineRequest good;
  good.epsilon = 4.0;
  good.num_classes = 2;
  good.candidates = {{0, 1}};
  ASSERT_TRUE(
      RoundContext::ClassRefinement(good, dist::Metric::kSed).ok());
  proto::ClassRefineRequest no_candidates = good;
  no_candidates.candidates.clear();
  EXPECT_FALSE(
      RoundContext::ClassRefinement(no_candidates, dist::Metric::kSed).ok());
  proto::ClassRefineRequest no_classes = good;
  no_classes.num_classes = 0;
  EXPECT_FALSE(
      RoundContext::ClassRefinement(no_classes, dist::Metric::kSed).ok());
  proto::ClassRefineRequest bad_eps = good;
  bad_eps.epsilon = -1.0;
  EXPECT_FALSE(
      RoundContext::ClassRefinement(bad_eps, dist::Metric::kSed).ok());
  EXPECT_FALSE(
      RoundContext::ClassRefinement("garbage", dist::Metric::kSed).ok());
  // A tiny corrupt broadcast must not be able to demand a multi-GB OUE
  // bit vector from every client: the cell grid is capped.
  proto::ClassRefineRequest huge = good;
  huge.num_classes = proto::kMaxClassRefineCells + 1;
  EXPECT_FALSE(
      RoundContext::ClassRefinement(huge, dist::Metric::kSed).ok());
  proto::ClassRefineRequest wide = good;
  wide.candidates = {{0, 1}, {1, 0}};           // 2 candidates x ...
  wide.num_classes = (uint64_t{1} << 19) + 1;   // ... classes -> over cap
  EXPECT_FALSE(
      RoundContext::ClassRefinement(wide, dist::Metric::kSed).ok());
}

TEST(RoundContextTest, ConstructionValidatesLikeTheWireApi) {
  // Same failures the string entry points produce.
  EXPECT_FALSE(RoundContext::Length(0, 10, 4.0).ok());
  EXPECT_FALSE(RoundContext::Length(5, 4, 4.0).ok());
  EXPECT_FALSE(RoundContext::Length(1, 10, -1.0).ok());  // bad epsilon
  EXPECT_FALSE(RoundContext::SubShape(3, 1, 4.0, false).ok());
  CandidateRequest empty;
  empty.epsilon = 1.0;
  EXPECT_FALSE(
      RoundContext::Selection(std::move(empty), dist::Metric::kSed).ok());
  EXPECT_FALSE(
      RoundContext::Selection("garbage", dist::Metric::kSed).ok());
  EXPECT_FALSE(
      RoundContext::Refinement("garbage", dist::Metric::kSed).ok());
  CandidateRequest bad_eps = SampleRequest(-2.0);
  EXPECT_FALSE(
      RoundContext::Selection(std::move(bad_eps), dist::Metric::kSed).ok());
}

TEST(RoundContextTest, AnswerRejectsKindMismatch) {
  auto length_ctx = RoundContext::Length(1, 10, 4.0);
  auto select_ctx =
      RoundContext::Selection(SampleRequest(4.0), dist::Metric::kSed);
  ASSERT_TRUE(length_ctx.ok());
  ASSERT_TRUE(select_ctx.ok());
  ClientSession session = SessionFor(0, dist::Metric::kSed);
  Report report;
  EXPECT_FALSE(session.AnswerLength(*select_ctx, nullptr, &report).ok());
  EXPECT_FALSE(session.AnswerSelection(*length_ctx, nullptr, &report).ok());
  EXPECT_FALSE(session.AnswerSubShape(*length_ctx, nullptr, &report).ok());
  EXPECT_FALSE(session.AnswerRefinement(*length_ctx, nullptr, &report).ok());
  EXPECT_FALSE(
      session.AnswerClassRefinement(*length_ctx, nullptr, &report).ok());
}

TEST(RoundContextTest, ReportReuseClearsStaleBits) {
  // A scratch Report that carried OUE bits must not leak them into the
  // next answer written over it.
  auto ctx = RoundContext::Length(1, 10, 4.0);
  ASSERT_TRUE(ctx.ok());
  AnswerScratch scratch;
  scratch.report.bits = {1, 0, 1};
  ClientSession session = SessionFor(3, dist::Metric::kSed);
  ReportBatch batch;
  ASSERT_TRUE(session.AnswerTo(*ctx, &scratch, &batch).ok());
  auto decoded = proto::DecodeReport(batch.view(0));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->bits.empty());
}

// --- ReportBatch ---------------------------------------------------------

TEST(ReportBatchTest, AppendViewRoundTrip) {
  ReportBatch batch;
  std::vector<Report> reports;
  for (uint64_t i = 0; i < 10; ++i) {
    Report report;
    report.kind = ReportKind::kSelection;
    report.level = i;
    report.value = i * 3 + 1;
    if (i % 3 == 0) report.bits = {static_cast<uint8_t>(i), 1};
    reports.push_back(report);
    batch.Append(report);
  }
  ASSERT_EQ(batch.size(), reports.size());
  size_t total = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.view(i), proto::EncodeReport(reports[i])) << i;
    total += batch.view(i).size();
    auto decoded = proto::DecodeReport(batch.view(i));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, reports[i]);
  }
  EXPECT_EQ(batch.bytes(), total);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.bytes(), 0u);
  // Reuse after Clear starts clean.
  batch.Append(reports[0]);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.view(0), proto::EncodeReport(reports[0]));
}

TEST(ReportBatchTest, EncodeReportToMatchesEncodeReport) {
  Report report;
  report.kind = ReportKind::kSubShape;
  report.level = 3;
  report.value = 17;
  report.bits = {1, 0, 1};
  std::string appended = "prefix";
  proto::EncodeReportTo(report, &appended);
  EXPECT_EQ(appended, "prefix" + proto::EncodeReport(report));
}

// --- In-place EM helpers -------------------------------------------------

TEST(InPlaceEmTest, ScoresAndSelectMatchAllocatingVariants) {
  std::vector<double> distances = {2.0, 5.0, 8.0, 5.0};
  std::vector<double> scores;
  ldp::ScoresFromDistancesInto(distances, &scores);
  EXPECT_EQ(scores, ldp::ScoresFromDistances(distances));

  auto em = ldp::ExponentialMechanism::Create(4.0);
  ASSERT_TRUE(em.ok());
  std::vector<double> probs;
  ASSERT_TRUE(em->SelectionProbabilitiesInto(scores, &probs).ok());
  auto expect_probs = em->SelectionProbabilities(scores);
  ASSERT_TRUE(expect_probs.ok());
  EXPECT_EQ(probs, *expect_probs);

  // Same draws as the allocating Select for the same rng state.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng a(seed), b(seed);
    std::vector<double> scratch;
    auto lhs = em->Select(scores, &a);
    auto rhs = em->Select(scores, &b, &scratch);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(rhs.ok());
    EXPECT_EQ(*lhs, *rhs) << seed;
  }
  EXPECT_FALSE(em->SelectionProbabilitiesInto({}, &probs).ok());
}

}  // namespace
}  // namespace privshape
