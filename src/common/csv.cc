#include "common/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace privshape {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  WriteRow(columns);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << EscapeCsvCell(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& cells) {
  std::vector<std::string> rendered;
  rendered.reserve(cells.size());
  for (double c : cells) rendered.push_back(FormatDouble(c));
  WriteRow(rendered);
}

std::string EscapeCsvCell(const std::string& cell) {
  // A cell whose content begins with the UTF-8 BOM must be quoted even
  // though RFC 4180 would not require it: written unquoted at the start
  // of a file, the parser's file-level BOM strip would eat it and the
  // cell would not round-trip. A leading quote keeps the strip from
  // firing. (Found by fuzz_csv.)
  const bool leading_bom = cell.rfind("\xEF\xBB\xBF", 0) == 0;
  if (!leading_bom &&
      cell.find_first_of(",\"\r\n") == std::string::npos) {
    return cell;
  }
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

Result<std::vector<std::vector<std::string>>> ParseCsvString(
    const std::string& text) {
  size_t i = 0;
  size_t end = text.size();
  // A UTF-8 BOM would otherwise poison the first cell ("\xEF\xBB\xBF1"
  // is not a number).
  if (text.rfind("\xEF\xBB\xBF", 0) == 0) i = 3;

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool row_has_content = false;  // any cell text or separator seen
  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto end_record = [&] {
    if (row_has_content) {
      end_cell();
      rows.push_back(std::move(row));
      row.clear();
    }
    row_has_content = false;
  };

  while (i < end) {
    char c = text[i];
    if (c == '"') {
      if (!cell.empty()) {
        return Status::InvalidArgument(
            "CSV: quote inside unquoted cell (row " +
            std::to_string(rows.size() + 1) + ")");
      }
      row_has_content = true;
      ++i;  // consume the opening quote
      for (;;) {
        if (i >= end) {
          return Status::InvalidArgument("CSV: unterminated quoted cell");
        }
        if (text[i] == '"') {
          if (i + 1 < end && text[i + 1] == '"') {
            cell += '"';
            i += 2;
            continue;
          }
          ++i;  // consume the closing quote
          break;
        }
        cell += text[i++];
      }
      if (i < end && text[i] != ',' && text[i] != '\n' && text[i] != '\r') {
        return Status::InvalidArgument(
            "CSV: text after closing quote (row " +
            std::to_string(rows.size() + 1) + ")");
      }
      continue;
    }
    if (c == ',') {
      row_has_content = true;
      end_cell();
      ++i;
      continue;
    }
    if (c == '\r' || c == '\n') {
      // CRLF is one record end; a bare CR or LF also ends the record.
      end_record();
      if (c == '\r' && i + 1 < end && text[i + 1] == '\n') ++i;
      ++i;
      continue;
    }
    cell += c;
    row_has_content = true;
    ++i;
  }
  end_record();  // final record without a trailing newline
  return rows;
}

Result<std::vector<std::vector<double>>> ReadCsvDoubles(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto cells = ParseCsvString(buffer.str());
  if (!cells.ok()) return cells.status();

  std::vector<std::vector<double>> rows;
  rows.reserve(cells->size());
  for (const auto& raw_row : *cells) {
    if (!rows.empty() && raw_row.size() != rows.front().size()) {
      return Status::InvalidArgument(
          "ragged CSV row " + std::to_string(rows.size() + 1) + " in " +
          path + ": " + std::to_string(raw_row.size()) + " cells, expected " +
          std::to_string(rows.front().size()));
    }
    std::vector<double> row;
    row.reserve(raw_row.size());
    for (const std::string& raw : raw_row) {
      errno = 0;
      char* parse_end = nullptr;
      double value = std::strtod(raw.c_str(), &parse_end);
      // Full consumption: "1abc" is an error, not 1. strtod already
      // skips leading whitespace; allow trailing whitespace only.
      while (parse_end != nullptr && *parse_end != '\0' &&
             (*parse_end == ' ' || *parse_end == '\t')) {
        ++parse_end;
      }
      if (parse_end == raw.c_str() || *parse_end != '\0' ||
          errno == ERANGE) {
        return Status::InvalidArgument("non-numeric CSV cell: " + raw);
      }
      row.push_back(value);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string FormatDouble(double v, int precision) {
  if (std::isnan(v)) return "nan";
  std::ostringstream ss;
  ss.precision(precision);
  ss << v;
  return ss.str();
}

}  // namespace privshape
