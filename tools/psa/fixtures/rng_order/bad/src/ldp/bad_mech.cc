// Fixture: every rng-order rule violated once. Token-level analysis
// only — this file never compiles.
#include "common/analysis_annotations.h"
#include "common/rng.h"

namespace privshape::ldp {

// R1: std:: randomness inside a report-path function.
PS_REPORT_PATH
size_t BadStdDraw(Rng* rng) {
  std::uniform_int_distribution<size_t> dist(0, 7);
  return dist(rng->engine());
}

// R1: raw Rng convenience draw on the report path.
PS_REPORT_PATH
double BadRawDraw(Rng* rng) { return rng->Uniform(0.0, 1.0); }

// R2: declared two words, consumes three.
PS_RNG_WORDS(2)
uint64_t BadCount(Rng* rng) {
  uint64_t words[3];
  rng->FillU64(words, 3);
  return words[0] ^ words[1] ^ words[2];
}

// R2: fixed count with consumption inside a loop.
PS_RNG_WORDS(4)
uint64_t BadLoopCount(Rng* rng) {
  uint64_t acc = 0;
  for (int i = 0; i < 2; ++i) {
    uint64_t words[2];
    rng->FillU64(words, 2);
    acc ^= words[0];
  }
  return acc;
}

// R4: consumes randomness with no annotation at all (closure breach).
size_t UnauditedDraw(Rng* rng) { return rng->Index(5); }

}  // namespace privshape::ldp
