/// \file
/// Fuzz target: the RFC-4180 CSV parser plus the writer round-trip
/// property — any text that parses must re-parse identically after
/// being re-emitted through EscapeCsvCell. CSV is the collector's
/// dataset/label ingestion surface (`--csv`, `--labels`), i.e. bytes an
/// operator points at the binary, so the parser must never crash or
/// loop on arbitrary input.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/csv.h"

using privshape::EscapeCsvCell;
using privshape::ParseCsvString;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = ParseCsvString(text);
  if (!parsed.ok()) return 0;

  // Round trip: re-emit through the writer's quoting and re-parse.
  // Rows that are a single empty cell serialize to a blank record,
  // which the parser deliberately skips — exclude them from equality.
  std::vector<std::vector<std::string>> kept;
  std::string out;
  for (const auto& row : parsed.value()) {
    if (row.size() == 1 && row[0].empty()) continue;
    kept.push_back(row);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += EscapeCsvCell(row[i]);
    }
    out += "\r\n";
  }

  auto reparsed = ParseCsvString(out);
  if (!reparsed.ok()) {
    std::abort();  // writer output must always parse
  }
  if (reparsed.value() != kept) {
    std::abort();  // round trip must be lossless
  }
  return 0;
}
