#include "eval/random_forest.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace privshape::eval {

namespace {

int MajorityLabel(const std::vector<int>& y,
                  const std::vector<size_t>& indices) {
  std::map<int, size_t> counts;
  for (size_t i : indices) counts[y[i]]++;
  int best = y[indices[0]];
  size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

double GiniImpurity(const std::map<int, size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double acc = 1.0;
  for (const auto& [_, c] : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    acc -= p * p;
  }
  return acc;
}

}  // namespace

int DecisionTree::Build(const std::vector<std::vector<double>>& x,
                        const std::vector<int>& y,
                        std::vector<size_t>& indices, int depth,
                        const Options& options, Rng* rng) {
  Node node;
  node.label = MajorityLabel(y, indices);

  bool pure = std::all_of(indices.begin(), indices.end(), [&](size_t i) {
    return y[i] == y[indices[0]];
  });
  if (pure || depth >= options.max_depth ||
      indices.size() < options.min_samples_split) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  size_t num_features = x[0].size();
  size_t try_features = options.max_features > 0
                            ? std::min(options.max_features, num_features)
                            : std::max<size_t>(
                                  1, static_cast<size_t>(std::sqrt(
                                         static_cast<double>(num_features))));

  // Sample candidate features without replacement.
  std::vector<size_t> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  rng->Shuffle(&features);
  features.resize(try_features);

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::map<int, size_t> total_counts;
  for (size_t i : indices) total_counts[y[i]]++;
  double parent_gini = GiniImpurity(total_counts, indices.size());

  for (size_t f : features) {
    // Sort indices by feature value and scan split points.
    std::vector<size_t> sorted = indices;
    std::sort(sorted.begin(), sorted.end(),
              [&](size_t a, size_t b) { return x[a][f] < x[b][f]; });
    std::map<int, size_t> left_counts;
    std::map<int, size_t> right_counts = total_counts;
    for (size_t pos = 1; pos < sorted.size(); ++pos) {
      int moved = y[sorted[pos - 1]];
      left_counts[moved]++;
      if (--right_counts[moved] == 0) right_counts.erase(moved);
      double lo = x[sorted[pos - 1]][f];
      double hi = x[sorted[pos]][f];
      if (hi - lo < 1e-12) continue;
      double n_left = static_cast<double>(pos);
      double n_right = static_cast<double>(sorted.size() - pos);
      double gini = (n_left * GiniImpurity(left_counts, pos) +
                     n_right * GiniImpurity(right_counts,
                                            sorted.size() - pos)) /
                    static_cast<double>(sorted.size());
      double gain = parent_gini - gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (lo + hi);
      }
    }
  }

  if (best_feature < 0) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    if (x[i][static_cast<size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  node.feature = best_feature;
  node.threshold = best_threshold;
  // Reserve this node's slot before recursing so child ids are stable.
  nodes_.push_back(node);
  int self = static_cast<int>(nodes_.size()) - 1;
  int left = Build(x, y, left_idx, depth + 1, options, rng);
  int right = Build(x, y, right_idx, depth + 1, options, rng);
  nodes_[static_cast<size_t>(self)].left = left;
  nodes_[static_cast<size_t>(self)].right = right;
  return self;
}

Result<DecisionTree> DecisionTree::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<int>& y,
    const Options& options, Rng* rng) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument(
        "training data must be non-empty with matching labels");
  }
  DecisionTree tree;
  std::vector<size_t> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0);
  tree.Build(x, y, indices, 0, options, rng);
  return tree;
}

int DecisionTree::Predict(const std::vector<double>& features) const {
  int cur = 0;
  while (true) {
    const Node& node = nodes_[static_cast<size_t>(cur)];
    if (node.feature < 0) return node.label;
    size_t f = static_cast<size_t>(node.feature);
    double v = f < features.size() ? features[f] : 0.0;
    cur = v <= node.threshold ? node.left : node.right;
    if (cur < 0) return node.label;
  }
}

Result<RandomForest> RandomForest::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<int>& y,
    const Options& options) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument(
        "training data must be non-empty with matching labels");
  }
  if (options.num_trees < 1) {
    return Status::InvalidArgument("need at least one tree");
  }
  RandomForest forest;
  Rng rng(options.seed);
  forest.trees_.reserve(static_cast<size_t>(options.num_trees));
  for (int t = 0; t < options.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<std::vector<double>> bx;
    std::vector<int> by;
    bx.reserve(x.size());
    by.reserve(y.size());
    Rng local = rng.Fork();
    for (size_t i = 0; i < x.size(); ++i) {
      size_t pick = local.Index(x.size());
      bx.push_back(x[pick]);
      by.push_back(y[pick]);
    }
    auto tree = DecisionTree::Fit(bx, by, options.tree, &local);
    if (!tree.ok()) return tree.status();
    forest.trees_.push_back(std::move(*tree));
  }
  return forest;
}

Result<RandomForest> RandomForest::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<int>& y) {
  return Fit(x, y, Options());
}

int RandomForest::Predict(const std::vector<double>& features) const {
  std::map<int, size_t> votes;
  for (const auto& tree : trees_) votes[tree.Predict(features)]++;
  int best = 0;
  size_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

std::vector<int> RandomForest::PredictBatch(
    const std::vector<std::vector<double>>& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(Predict(row));
  return out;
}

}  // namespace privshape::eval
