// Regression tests pinning the batched-randomness canonical order.
// Since this PR, GRR consumes exactly two raw engine words per draw and
// unary encoding exactly one word per cell (threshold compares); every
// report path — in-process rounds and wire sessions — shares these
// implementations, so these tests are the contract that keeps the
// consumption order (and with it the byte-identical determinism matrix)
// from drifting.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"

namespace privshape {
namespace {

TEST(FillU64Test, MatchesStdMt19937_64Stream) {
  // Crossing the 156-output lazy prefix exercises both the lazy loop and
  // the materialized-engine bulk path.
  LazyMt64 lazy(123456789);
  std::mt19937_64 reference(123456789);
  std::vector<uint64_t> got(400);
  lazy.FillU64(got.data(), got.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], reference()) << "output " << i;
  }
}

TEST(FillU64Test, ChunkedFillsEqualOneBigFill) {
  LazyMt64 a(42), b(42);
  std::vector<uint64_t> big(300), chunked(300);
  a.FillU64(big.data(), big.size());
  b.FillU64(chunked.data(), 7);
  b.FillU64(chunked.data() + 7, 150);  // crosses the lazy prefix mid-way
  b.FillU64(chunked.data() + 157, 143);
  EXPECT_EQ(big, chunked);
}

TEST(FillU64Test, InterleavesExactlyWithSingleDraws) {
  LazyMt64 a(7), b(7);
  std::vector<uint64_t> buf(5);
  a.FillU64(buf.data(), 5);
  uint64_t next_a = a();
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(buf[i], b());
  EXPECT_EQ(next_a, b());
}

TEST(ThresholdForProbabilityTest, EdgesAndMonotonicity) {
  EXPECT_EQ(ThresholdForProbability(0.0), 0u);
  EXPECT_EQ(ThresholdForProbability(-1.0), 0u);
  EXPECT_EQ(ThresholdForProbability(1.0), ~uint64_t{0});
  EXPECT_EQ(ThresholdForProbability(2.0), ~uint64_t{0});
  EXPECT_EQ(ThresholdForProbability(0.5), uint64_t{1} << 63);
  EXPECT_EQ(ThresholdForProbability(0.25), uint64_t{1} << 62);
  EXPECT_LT(ThresholdForProbability(0.3), ThresholdForProbability(0.31));
}

TEST(BoundedFromU64Test, StaysInRangeAndCoversIt) {
  for (uint64_t n : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    EXPECT_EQ(BoundedFromU64(0, n), 0u);
    EXPECT_EQ(BoundedFromU64(~uint64_t{0}, n), n - 1);
  }
  // Equal slices map to equal indices: the midpoint word of n = 2 flips.
  EXPECT_EQ(BoundedFromU64((uint64_t{1} << 63) - 1, 2), 0u);
  EXPECT_EQ(BoundedFromU64(uint64_t{1} << 63, 2), 1u);
}

TEST(LessThanU64Test, MatchesScalarCompareAtEveryOffset) {
  // Lengths around the vector width cover the SIMD body and scalar tail.
  Rng rng(99);
  for (size_t n = 0; n <= 19; ++n) {
    std::vector<uint64_t> in(n);
    rng.FillU64(in.data(), n);
    if (n > 2) in[1] = 0;  // plant exact edges
    if (n > 3) in[2] = ~uint64_t{0};
    uint64_t threshold = n % 2 == 0 ? ThresholdForProbability(0.5)
                                    : ThresholdForProbability(0.1);
    std::vector<uint8_t> got(n, 0xAA);
    simd::LessThanU64(in.data(), n, threshold, got.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], in[i] < threshold ? 1 : 0) << "n=" << n << " i=" << i;
    }
  }
}

TEST(GrrBatchTest, ConsumesExactlyTwoWordsPerDraw) {
  auto grr = ldp::Grr::Create(10, 1.0);
  ASSERT_TRUE(grr.ok());
  Rng rng(2024);
  Rng reference(2024);
  uint64_t expected[2];
  reference.FillU64(expected, 2);
  size_t out = grr->PerturbValue(3, &rng);
  // Replay the canonical rule on the same two words.
  size_t want;
  if (expected[0] < ThresholdForProbability(grr->p())) {
    want = 3;
  } else {
    size_t r = static_cast<size_t>(BoundedFromU64(expected[1], 9));
    want = r >= 3 ? r + 1 : r;
  }
  EXPECT_EQ(out, want);
  // Both engines must now be in the same position: next draws agree.
  uint64_t a[1], b[1];
  rng.FillU64(a, 1);
  reference.FillU64(b, 1);
  EXPECT_EQ(a[0], b[0]);
}

TEST(GrrBatchTest, KeepRateTracksP) {
  auto grr = ldp::Grr::Create(4, 2.0);
  ASSERT_TRUE(grr.ok());
  Rng rng(555);
  int kept = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (grr->PerturbValue(2, &rng) == 2) ++kept;
  }
  // P[report = true value] = p + q (keep, or flip landing back is
  // impossible under GRR's flip-to-other rule, so just p).
  EXPECT_NEAR(static_cast<double>(kept) / kTrials, grr->p(), 0.01);
}

TEST(OueBatchTest, EncodeConsumesOneWordPerCell) {
  const size_t kCells = 13;
  auto oue = ldp::UnaryEncoding::Create(kCells, 1.5,
                                        ldp::UnaryEncoding::Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  Rng rng(31337);
  Rng reference(31337);
  std::vector<uint64_t> expected(kCells);
  reference.FillU64(expected.data(), kCells);

  std::vector<uint64_t> words;
  std::vector<uint8_t> bits;
  const size_t kValue = 5;
  oue->EncodeInto(kValue, &rng, &words, &bits);
  ASSERT_EQ(bits.size(), kCells);
  ASSERT_EQ(words, expected);
  for (size_t i = 0; i < kCells; ++i) {
    double keep = i == kValue ? oue->p() : oue->q();
    EXPECT_EQ(bits[i], expected[i] < ThresholdForProbability(keep) ? 1 : 0)
        << "cell " << i;
  }
  // Engine position: exactly kCells words consumed.
  uint64_t a[1], b[1];
  rng.FillU64(a, 1);
  reference.FillU64(b, 1);
  EXPECT_EQ(a[0], b[0]);
}

TEST(OueBatchTest, PerturbValueDelegatesToEncodeInto) {
  auto oue = ldp::UnaryEncoding::Create(9, 0.8,
                                        ldp::UnaryEncoding::Variant::kOptimized);
  ASSERT_TRUE(oue.ok());
  Rng a(77), b(77);
  std::vector<uint8_t> from_perturb = oue->PerturbValue(4, &a);
  std::vector<uint64_t> words;
  std::vector<uint8_t> from_encode;
  oue->EncodeInto(4, &b, &words, &from_encode);
  EXPECT_EQ(from_perturb, from_encode);
}

}  // namespace
}  // namespace privshape
