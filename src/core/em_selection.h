#ifndef PRIVSHAPE_CORE_EM_SELECTION_H_
#define PRIVSHAPE_CORE_EM_SELECTION_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "distance/distance.h"
#include "series/sequence.h"

namespace privshape::core {

/// Sequence matching on the user side (§III-C-2, Eq. (2)): every user in
/// `population` scores all candidates by similarity to their own sequence
/// (S = normalized 1/dist) and releases one candidate index through the
/// Exponential Mechanism at budget `epsilon`. Returns the selection count
/// per candidate — the per-level frequency estimate both mechanisms use.
///
/// `prefix_compare = true` compares each candidate against the equally
/// long *prefix* of the user's sequence (Lemma 1's prefix-frequency
/// interpretation for intermediate trie levels); at the final level the
/// candidate length equals ell_S so this coincides with full-sequence
/// matching.
Result<std::vector<double>> EmSelectionCounts(
    const std::vector<Sequence>& candidates,
    const std::vector<Sequence>& sequences,
    const std::vector<size_t>& population, dist::Metric metric,
    double epsilon, bool prefix_compare, Rng* rng);

}  // namespace privshape::core

#endif  // PRIVSHAPE_CORE_EM_SELECTION_H_
