#include "ldp/numeric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace privshape {
namespace {

using ldp::DuchiMechanism;
using ldp::LaplaceMechanism;
using ldp::PiecewiseMechanism;

TEST(PiecewiseTest, RejectsInvalidEps) {
  EXPECT_FALSE(PiecewiseMechanism::Create(0.0).ok());
  EXPECT_TRUE(PiecewiseMechanism::Create(0.5).ok());
}

TEST(PiecewiseTest, OutputBoundFormula) {
  auto pm = PiecewiseMechanism::Create(2.0);
  ASSERT_TRUE(pm.ok());
  double e_half = std::exp(1.0);
  EXPECT_NEAR(pm->output_bound(), (e_half + 1.0) / (e_half - 1.0), 1e-12);
}

TEST(PiecewiseTest, OutputsStayInBounds) {
  auto pm = PiecewiseMechanism::Create(1.0);
  ASSERT_TRUE(pm.ok());
  Rng rng(71);
  double c = pm->output_bound();
  for (int i = 0; i < 5000; ++i) {
    double v = rng.Uniform(-1.0, 1.0);
    double out = pm->Perturb(v, &rng);
    EXPECT_GE(out, -c - 1e-9);
    EXPECT_LE(out, c + 1e-9);
  }
}

class PiecewiseUnbiasedTest : public ::testing::TestWithParam<double> {};

TEST_P(PiecewiseUnbiasedTest, MeanIsTrueValue) {
  double v = GetParam();
  auto pm = PiecewiseMechanism::Create(2.0);
  ASSERT_TRUE(pm.ok());
  Rng rng(72);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += pm->Perturb(v, &rng);
  EXPECT_NEAR(sum / n, v, 0.02) << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(InputGrid, PiecewiseUnbiasedTest,
                         ::testing::Values(-1.0, -0.5, 0.0, 0.3, 1.0));

TEST(PiecewiseTest, DensityRatioIsExactlyExpEps) {
  // The worst-case density ratio between any two inputs at any output
  // equals e^eps — the eps-LDP property, checked on the closed form.
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    auto pm = PiecewiseMechanism::Create(eps);
    ASSERT_TRUE(pm.ok());
    Rng rng(73);
    double c = pm->output_bound();
    for (int trial = 0; trial < 500; ++trial) {
      double v1 = rng.Uniform(-1.0, 1.0);
      double v2 = rng.Uniform(-1.0, 1.0);
      double out = rng.Uniform(-c, c);
      double d1 = pm->DensityAt(v1, out);
      double d2 = pm->DensityAt(v2, out);
      ASSERT_GT(d2, 0.0);
      EXPECT_LE(d1 / d2, std::exp(eps) + 1e-9);
    }
  }
}

TEST(PiecewiseTest, DensityIntegratesToOne) {
  auto pm = PiecewiseMechanism::Create(1.5);
  ASSERT_TRUE(pm.ok());
  double c = pm->output_bound();
  const int steps = 200000;
  double dx = 2.0 * c / steps;
  double mass = 0.0;
  for (int i = 0; i < steps; ++i) {
    double x = -c + (i + 0.5) * dx;
    mass += pm->DensityAt(0.3, x) * dx;
  }
  EXPECT_NEAR(mass, 1.0, 1e-3);
}

TEST(PiecewiseTest, ClampsInputsOutsideUnitRange) {
  auto pm = PiecewiseMechanism::Create(2.0);
  ASSERT_TRUE(pm.ok());
  Rng rng(74);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += pm->Perturb(7.0, &rng);
  EXPECT_NEAR(sum / n, 1.0, 0.05);  // clamped to 1
}

TEST(DuchiTest, OutputsAreBinary) {
  auto duchi = DuchiMechanism::Create(1.0);
  ASSERT_TRUE(duchi.ok());
  Rng rng(75);
  double c = duchi->output_magnitude();
  for (int i = 0; i < 1000; ++i) {
    double out = duchi->Perturb(rng.Uniform(-1.0, 1.0), &rng);
    EXPECT_TRUE(std::abs(out - c) < 1e-12 || std::abs(out + c) < 1e-12);
  }
}

class DuchiUnbiasedTest : public ::testing::TestWithParam<double> {};

TEST_P(DuchiUnbiasedTest, MeanIsTrueValue) {
  double v = GetParam();
  auto duchi = DuchiMechanism::Create(1.5);
  ASSERT_TRUE(duchi.ok());
  Rng rng(76);
  const int n = 300000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += duchi->Perturb(v, &rng);
  EXPECT_NEAR(sum / n, v, 0.02) << "v=" << v;
}

INSTANTIATE_TEST_SUITE_P(InputGrid, DuchiUnbiasedTest,
                         ::testing::Values(-1.0, 0.0, 0.5, 1.0));

TEST(LaplaceTest, UnbiasedAndCorrectScale) {
  auto lap = LaplaceMechanism::Create(2.0);
  ASSERT_TRUE(lap.ok());
  Rng rng(77);
  const int n = 200000;
  double sum = 0, sum_abs_dev = 0;
  for (int i = 0; i < n; ++i) {
    double out = lap->Perturb(0.25, &rng);
    sum += out;
    sum_abs_dev += std::abs(out - 0.25);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.02);
  EXPECT_NEAR(sum_abs_dev / n, 1.0, 0.02);  // E|Lap(2/eps)| = 2/eps = 1
}

TEST(NumericTest, AllRejectNonPositiveEps) {
  EXPECT_FALSE(DuchiMechanism::Create(-1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(0.0).ok());
}

}  // namespace
}  // namespace privshape
