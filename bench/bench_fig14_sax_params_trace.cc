// Fig. 14: PrivShape classification accuracy on Trace at eps = 4 when
// varying the SAX parameters: (a) t in {3,4,5,6} at w = 10, and (b) w in
// {5,10,15,20} at t = 4.

#include <iostream>

#include "bench/harness.h"
#include "series/generators.h"
#include "series/time_series.h"

namespace pb = privshape::bench;

namespace {

double AccuracyFor(int t, int w, const pb::ExperimentScale& scale) {
  double total = 0;
  for (int trial = 0; trial < scale.trials; ++trial) {
    uint64_t seed = scale.seed + static_cast<uint64_t>(trial);
    privshape::series::GeneratorOptions gen;
    gen.num_instances = scale.users;
    gen.seed = seed;
    auto dataset = privshape::series::MakeTraceDataset(gen);
    privshape::series::Dataset train, test;
    privshape::series::TrainTestSplit(dataset, 0.8, seed, &train, &test);
    privshape::core::TransformOptions transform;
    transform.t = t;
    transform.w = w;
    auto config = pb::TraceConfig(4.0, seed);
    config.t = t;
    config.num_classes = 3;
    total += pb::RunPrivShapeClassification(train, test, transform, config)
                 .accuracy;
  }
  return total / scale.trials;
}

}  // namespace

int main(int argc, char** argv) {
  privshape::CliArgs args(argc, argv);
  pb::ExperimentScale scale = pb::ScaleFromArgs(args, 2400, 2);
  auto csv = pb::MaybeCsv("fig14_sax_params_trace");
  if (csv) csv->WriteHeader({"sweep", "value", "accuracy"});

  pb::PrintTitle("Fig. 14(a): accuracy varying symbol size t (w=10, Trace)");
  pb::PrintHeader({"t", "Accuracy"});
  for (int t : {3, 4, 5, 6}) {
    double acc = AccuracyFor(t, 10, scale);
    pb::PrintRow({std::to_string(t), privshape::FormatDouble(acc, 4)});
    if (csv) csv->WriteRow({"t", std::to_string(t),
                            privshape::FormatDouble(acc, 4)});
  }

  pb::PrintTitle("Fig. 14(b): accuracy varying segment length w (t=4, Trace)");
  pb::PrintHeader({"w", "Accuracy"});
  for (int w : {5, 10, 15, 20}) {
    double acc = AccuracyFor(4, w, scale);
    pb::PrintRow({std::to_string(w), privshape::FormatDouble(acc, 4)});
    if (csv) csv->WriteRow({"w", std::to_string(w),
                            privshape::FormatDouble(acc, 4)});
  }

  std::cout << "\nExpected shape (paper Fig. 14): accuracy first rises then "
               "falls in both t and w.\n";
  return 0;
}
