#ifndef PRIVSHAPE_PROTOCOL_MESSAGES_H_
#define PRIVSHAPE_PROTOCOL_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "series/sequence.h"

namespace privshape::proto {

/// Wire version stamped on every report so a deployed fleet can roll
/// forward without ambiguity.
inline constexpr uint64_t kWireVersion = 1;

/// Which stage produced a report.
enum class ReportKind : uint64_t {
  kLength = 1,      ///< P_a: GRR-perturbed clipped sequence length
  kSubShape = 2,    ///< P_b: (level, GRR-perturbed pair index)
  kSelection = 3,   ///< P_c: (level, EM-selected candidate index)
  kRefinement = 4,  ///< P_d: GRR candidate index or OUE bit vector
};

/// One user's report. Exactly one payload group is meaningful per kind:
///  kLength     -> value
///  kSubShape   -> level + value
///  kSelection  -> level + value
///  kRefinement -> value (GRR) or bits (OUE)
struct Report {
  ReportKind kind = ReportKind::kLength;
  uint64_t level = 0;
  uint64_t value = 0;
  std::vector<uint8_t> bits;

  bool operator==(const Report& other) const {
    return kind == other.kind && level == other.level &&
           value == other.value && bits == other.bits;
  }
};

/// Serializes a report (version, kind, level, value, bits).
std::string EncodeReport(const Report& report);

/// Parses a report; rejects unknown versions, unknown kinds, and
/// trailing garbage.
Result<Report> DecodeReport(const std::string& buffer);

/// Server -> client task descriptions. Candidates are symbol words; the
/// client matches locally and answers with a Report.
struct CandidateRequest {
  uint64_t level = 0;
  double epsilon = 0.0;
  std::vector<Sequence> candidates;

  bool operator==(const CandidateRequest& other) const {
    return level == other.level && epsilon == other.epsilon &&
           candidates == other.candidates;
  }
};

std::string EncodeCandidateRequest(const CandidateRequest& request);
Result<CandidateRequest> DecodeCandidateRequest(const std::string& buffer);

}  // namespace privshape::proto

#endif  // PRIVSHAPE_PROTOCOL_MESSAGES_H_
