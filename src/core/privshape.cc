#include "core/privshape.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "core/em_selection.h"
#include "core/length_estimation.h"
#include "core/population.h"
#include "core/subshape.h"
#include "eval/agglomerative.h"
#include "ldp/grr.h"
#include "ldp/unary_encoding.h"
#include "trie/trie.h"

namespace privshape::core {

namespace {

/// Index of the candidate closest to `seq` (exact; the noise is applied to
/// the reported index by the caller's oracle).
size_t ClosestCandidate(const Sequence& seq,
                        const std::vector<Sequence>& candidates,
                        const dist::SequenceDistance& distance) {
  double best = std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double d = distance.Distance(seq, candidates[i]);
    if (d < best) {
      best = d;
      best_idx = i;
    }
  }
  return best_idx;
}

}  // namespace

Result<MechanismResult> PrivShape::Run(const std::vector<Sequence>& sequences,
                                       const std::vector<int>* labels) const {
  PRIVSHAPE_RETURN_IF_ERROR(config_.Validate());
  if (sequences.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  if (config_.num_classes > 0) {
    if (labels == nullptr || labels->size() != sequences.size()) {
      return Status::InvalidArgument(
          "classification refinement requires one label per sequence");
    }
    for (int label : *labels) {
      if (label < 0 || label >= config_.num_classes) {
        return Status::OutOfRange("label outside [0, num_classes)");
      }
    }
  }

  Rng rng(config_.seed);
  MechanismResult result;
  size_t ck = static_cast<size_t>(config_.c) * static_cast<size_t>(config_.k);

  FourWaySplit split =
      SplitFourWay(sequences.size(), config_.frac_a, config_.frac_b,
                   config_.frac_c, config_.frac_d, &rng);

  // Stage 1: frequent length from P_a.
  auto ell = EstimateFrequentLength(sequences, split.pa, config_.ell_low,
                                    config_.ell_high, config_.epsilon, &rng);
  if (!ell.ok()) return ell.status();
  int ell_s = *ell;
  result.frequent_length = ell_s;
  PRIVSHAPE_RETURN_IF_ERROR(result.accountant.Charge("Pa", config_.epsilon));

  // Stage 2: frequent sub-shapes from P_b.
  auto subshapes = EstimateSubShapes(sequences, split.pb, ell_s, config_.t,
                                     ck, config_.epsilon,
                                     config_.allow_repeats, &rng);
  if (!subshapes.ok()) return subshapes.status();
  PRIVSHAPE_RETURN_IF_ERROR(result.accountant.Charge("Pb", config_.epsilon));

  // Stage 3: trie expansion from P_c.
  auto trie_r = trie::CandidateTrie::Create(config_.t);
  if (!trie_r.ok()) return trie_r.status();
  trie::CandidateTrie trie = std::move(*trie_r);
  if (config_.allow_repeats) trie.set_allow_repeats(true);

  std::vector<std::vector<size_t>> level_groups =
      PartitionGroups(split.pc, static_cast<size_t>(ell_s));

  for (int level = 0; level < ell_s; ++level) {
    if (level == 0) {
      trie.ExpandRoot();
    } else {
      trie.PruneToTopK(ck);
      // Gate the fan-out with the frequent transitions at this level.
      const auto& transitions =
          subshapes->top_transitions[static_cast<size_t>(level) - 1];
      std::set<trie::Transition> allowed(transitions.begin(),
                                         transitions.end());
      // Count the continuations the gate would allow; if none, fall back
      // to the full fan-out so the trie never dead-ends.
      size_t possible = 0;
      for (const Sequence& path : trie.FrontierCandidates()) {
        Symbol last = path.back();
        for (const auto& tr : allowed) {
          if (tr.first == last) ++possible;
        }
      }
      if (possible == 0) {
        PS_LOG(kWarning) << "privshape: no frequent transition continues "
                            "level "
                         << level << "; falling back to full expansion";
        trie.ExpandAll();
      } else {
        trie.ExpandWithTransitions(allowed);
      }
    }

    std::vector<Sequence> candidates = trie.FrontierCandidates();
    auto counts = EmSelectionCounts(
        candidates, sequences, level_groups[static_cast<size_t>(level)],
        config_.metric, config_.epsilon, /*prefix_compare=*/true, &rng);
    if (!counts.ok()) return counts.status();
    PRIVSHAPE_RETURN_IF_ERROR(result.accountant.Charge(
        "Pc.level" + std::to_string(level), config_.epsilon));

    const std::vector<int>& frontier = trie.Frontier();
    for (size_t i = 0; i < frontier.size(); ++i) {
      PRIVSHAPE_RETURN_IF_ERROR(trie.SetFrequency(frontier[i], (*counts)[i]));
    }
  }

  // Stage 4: two-level refinement from P_d.
  trie.PruneToTopK(ck);
  std::vector<Sequence> candidates = trie.FrontierCandidates();
  if (candidates.empty()) {
    return Status::Internal("trie expansion produced no candidates");
  }
  auto distance = dist::MakeDistance(config_.metric);

  std::vector<double> refined(candidates.size(), 0.0);
  std::vector<int> refined_labels(candidates.size(), -1);
  if (config_.disable_refinement) {
    // Ablation: trust the last trie level's EM counts; P_d stays unused
    // (so the user-level guarantee is unchanged).
    const std::vector<int>& frontier = trie.Frontier();
    for (size_t i = 0; i < frontier.size(); ++i) {
      refined[i] = trie.Frequency(frontier[i]);
    }
    if (config_.num_classes > 0) {
      return Status::Unimplemented(
          "classification requires the refinement stage (it carries the "
          "label information)");
    }
  } else if (config_.num_classes == 0) {
    // Clustering: GRR over candidate indices.
    auto grr = ldp::Grr::Create(std::max<size_t>(candidates.size(), 2),
                                config_.epsilon);
    if (!grr.ok()) return grr.status();
    for (size_t user : split.pd) {
      size_t pick = ClosestCandidate(sequences[user], candidates, *distance);
      PRIVSHAPE_RETURN_IF_ERROR(grr->SubmitUser(pick, &rng));
    }
    std::vector<double> counts = grr->EstimateCounts();
    for (size_t i = 0; i < candidates.size(); ++i) refined[i] = counts[i];
  } else {
    // Classification: OUE over candidate x class cells (§V-E).
    size_t cells = candidates.size() * static_cast<size_t>(config_.num_classes);
    auto oue = ldp::UnaryEncoding::Create(
        cells, config_.epsilon, ldp::UnaryEncoding::Variant::kOptimized);
    if (!oue.ok()) return oue.status();
    for (size_t user : split.pd) {
      size_t pick = ClosestCandidate(sequences[user], candidates, *distance);
      size_t cell = pick * static_cast<size_t>(config_.num_classes) +
                    static_cast<size_t>((*labels)[user]);
      PRIVSHAPE_RETURN_IF_ERROR(oue->SubmitUser(cell, &rng));
    }
    std::vector<double> counts = oue->EstimateCounts();
    for (size_t i = 0; i < candidates.size(); ++i) {
      double total = 0.0;
      double best = -std::numeric_limits<double>::infinity();
      int best_label = 0;
      for (int cls = 0; cls < config_.num_classes; ++cls) {
        double v = counts[i * static_cast<size_t>(config_.num_classes) +
                          static_cast<size_t>(cls)];
        total += v;
        if (v > best) {
          best = v;
          best_label = cls;
        }
      }
      refined[i] = total;
      refined_labels[i] = best_label;
    }
  }
  if (!config_.disable_refinement) {
    PRIVSHAPE_RETURN_IF_ERROR(
        result.accountant.Charge("Pd", config_.epsilon));
  }

  result.refined_pool.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    ShapeCandidate cand;
    cand.shape = candidates[i];
    cand.frequency = refined[i];
    cand.label = refined_labels[i];
    result.refined_pool.push_back(std::move(cand));
  }

  // Stage 5: post-processing.
  if (config_.num_classes > 0) {
    // Classification (§V-E): the criteria are "the most frequent shapes
    // estimated within each class" — pick the top-frequency candidate per
    // class so every represented class contributes one shape.
    for (int cls = 0; cls < config_.num_classes; ++cls) {
      double best = -std::numeric_limits<double>::infinity();
      int best_idx = -1;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (refined_labels[i] != cls) continue;
        if (refined[i] > best) {
          best = refined[i];
          best_idx = static_cast<int>(i);
        }
      }
      if (best_idx >= 0) {
        result.shapes.push_back(
            result.refined_pool[static_cast<size_t>(best_idx)]);
      }
    }
    std::stable_sort(result.shapes.begin(), result.shapes.end(),
                     [](const ShapeCandidate& a, const ShapeCandidate& b) {
                       return a.frequency > b.frequency;
                     });
    PRIVSHAPE_RETURN_IF_ERROR(
        result.accountant.CheckWithinBudget(config_.epsilon));
    return result;
  }

  if (config_.disable_postprocessing) {
    // Ablation: raw top-k by refined frequency, duplicates and all.
    std::vector<size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return refined[a] > refined[b];
    });
    size_t emit = std::min(static_cast<size_t>(config_.k), order.size());
    for (size_t i = 0; i < emit; ++i) {
      result.shapes.push_back(result.refined_pool[order[i]]);
    }
    PRIVSHAPE_RETURN_IF_ERROR(
        result.accountant.CheckWithinBudget(config_.epsilon));
    return result;
  }

  // Clustering: group similar candidates, keep the most frequent member
  // per group (§IV-C) so near-duplicates do not crowd out distinct shapes.
  size_t n_cand = candidates.size();
  size_t groups = std::min(static_cast<size_t>(config_.k), n_cand);
  std::vector<std::vector<double>> dmatrix(n_cand,
                                           std::vector<double>(n_cand, 0.0));
  for (size_t i = 0; i < n_cand; ++i) {
    for (size_t j = i + 1; j < n_cand; ++j) {
      double d = distance->Distance(candidates[i], candidates[j]);
      dmatrix[i][j] = dmatrix[j][i] = d;
    }
  }
  // Average linkage balances dedup strength against the risk of chaining
  // two genuinely distinct shapes into one group (which would silently
  // drop a class); see bench_ablation_design for the measured trade-off.
  auto clusters = eval::AgglomerativeCluster(dmatrix,
                                             static_cast<int>(groups),
                                             eval::Linkage::kAverage);
  if (!clusters.ok()) return clusters.status();

  for (size_t g = 0; g < groups; ++g) {
    double best = -std::numeric_limits<double>::infinity();
    int best_idx = -1;
    for (size_t i = 0; i < n_cand; ++i) {
      if (static_cast<size_t>((*clusters)[i]) != g) continue;
      if (refined[i] > best) {
        best = refined[i];
        best_idx = static_cast<int>(i);
      }
    }
    if (best_idx >= 0) {
      result.shapes.push_back(result.refined_pool[static_cast<size_t>(best_idx)]);
    }
  }
  std::stable_sort(result.shapes.begin(), result.shapes.end(),
                   [](const ShapeCandidate& a, const ShapeCandidate& b) {
                     return a.frequency > b.frequency;
                   });

  PRIVSHAPE_RETURN_IF_ERROR(
      result.accountant.CheckWithinBudget(config_.epsilon));
  return result;
}

}  // namespace privshape::core
