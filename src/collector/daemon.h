/// \file
/// `privshape_collectord` core: a TCP collection server (epoll,
/// non-blocking, length-prefixed frames) that drives the full Algorithm 2
/// protocol over real sockets. Each round, the daemon partitions the
/// stage population across the connected clients, broadcasts the round's
/// encoded request, ingests framed ReportBatch uploads through the same
/// bounded-queue drainer lanes the in-process coordinator uses, and
/// barriers on per-connection RoundDone messages (with a deadline, so a
/// stalled or dead client cannot wedge the fleet). Invariant: for a fixed
/// fleet seed the extracted shapes are byte-identical to core::PrivShape
/// — the wire changes how reports travel, never what is counted.

#ifndef PRIVSHAPE_COLLECTOR_DAEMON_H_
#define PRIVSHAPE_COLLECTOR_DAEMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collector/metrics.h"
#include "collector/round_coordinator.h"
#include "common/socket.h"
#include "common/status.h"
#include "core/config.h"
#include "net/frame.h"
#include "telemetry/stats_endpoint.h"

namespace privshape::collector {

/// Serving knobs of the socket daemon. Like CollectorOptions, none of
/// them may change the extracted shapes — only how the rounds run.
struct DaemonOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with CollectorDaemon::port().
  uint16_t port = 0;
  /// Handshaked connections to wait for before the first round starts.
  size_t min_clients = 1;
  /// How long to wait for min_clients before giving up.
  double accept_timeout_seconds = 30.0;
  /// Per-round completion deadline: connections that have not sent
  /// RoundDone by then are dropped and the round completes with the
  /// survivors' reports.
  double round_deadline_seconds = 30.0;
  /// Aggregation lanes (0 = one per drainer).
  size_t num_shards = 0;
  /// Dedicated aggregation drainer threads fed by the event loop.
  size_t num_drainers = 1;
  /// Batches buffered per drainer queue before ingestion backpressures
  /// the event loop (and, through TCP, the clients); 0 = unbounded.
  size_t queue_depth = 8;
  /// Mount a scrape endpoint (Prometheus text on /metrics, JSON snapshot
  /// elsewhere) on the daemon's own event loop. 0 binds an ephemeral
  /// port; read it back with CollectorDaemon::stats_port().
  bool stats_enabled = false;
  uint16_t stats_port = 0;
};

/// Wire-level health counters, exposed for tests and merged into the
/// CollectorMetrics JSON. Only read them after Serve returned.
struct DaemonStats {
  size_t connections_accepted = 0;  ///< TCP accepts
  size_t handshakes = 0;            ///< valid Hello/Welcome exchanges
  size_t disconnects = 0;           ///< connections lost before Complete
  size_t protocol_errors = 0;       ///< connections dropped for violations
  size_t stale_batches = 0;         ///< uploads for a past round, discarded
  size_t deadline_drops = 0;        ///< connections dropped at a deadline
};

/// The collection daemon. Usage:
///   CollectorDaemon daemon(config, num_users, options);
///   PRIVSHAPE_RETURN_IF_ERROR(daemon.Start());   // port() now valid
///   auto result = daemon.Serve(&metrics);        // runs the protocol
/// Single-threaded event loop plus drainer threads per round; the whole
/// object must be driven from one thread. Serve polls the global
/// shutdown flag (common/shutdown.h) and returns Status::Cancelled —
/// with queues drained, sockets closed, and metrics populated — when a
/// SIGINT/SIGTERM arrives mid-protocol.
class CollectorDaemon {
 public:
  /// `num_users` is the total simulated fleet size; every client's Hello
  /// must declare the same number or the handshake is rejected.
  CollectorDaemon(core::MechanismConfig config, size_t num_users,
                  DaemonOptions options);
  ~CollectorDaemon();

  CollectorDaemon(const CollectorDaemon&) = delete;
  CollectorDaemon& operator=(const CollectorDaemon&) = delete;

  /// Binds and listens. After this, port() is the actual port.
  Status Start();

  uint16_t port() const { return port_; }

  /// Actual port of the scrape endpoint; 0 when stats are disabled or
  /// Start has not run.
  uint16_t stats_port() const {
    return stats_endpoint_ != nullptr ? stats_endpoint_->port() : 0;
  }

  /// Accepts clients until min_clients are handshaked, then drives the
  /// whole protocol over the wire and broadcasts the result. Returns the
  /// extracted shapes; on shutdown or fatal transport error, returns the
  /// corresponding status with `metrics` still populated as far as the
  /// run got.
  Result<core::MechanismResult> Serve(CollectorMetrics* metrics = nullptr);

  const DaemonStats& stats() const { return stats_; }
  const core::MechanismConfig& config() const { return config_; }

  size_t EffectiveShards() const;
  size_t EffectiveDrainers() const;

 private:
  struct Connection;
  struct RoundState;

  // Event-loop plumbing (definitions in daemon.cc).
  Status ProcessEvents(int timeout_ms);
  void AcceptPending();
  void HandleReadable(Connection& conn);
  void HandleFrame(Connection& conn, const net::Frame& frame);
  void HandleHello(Connection& conn, const net::Frame& frame);
  void HandleBatchUpload(Connection& conn, const net::Frame& frame);
  void HandleRoundDone(Connection& conn, const net::Frame& frame);
  void SendFrame(Connection& conn, net::MsgType type, std::string_view body);
  void FlushOutbox(Connection& conn);
  void DropConnection(Connection& conn, const std::string& reason,
                      bool protocol_error);
  size_t LiveHandshaked() const;

  RoundOutcome RunNetworkRound(const std::vector<size_t>& population,
                               const StageSpec& spec,
                               const std::string& encoded_request);
  void BroadcastComplete(const core::MechanismResult& result);
  void CloseAll();

  /// Scrape-response body for the stats endpoint: runs on the event-loop
  /// thread, so reading daemon state here is race-free.
  std::string StatsContent(std::string_view path);

  // Thread-safety contract (checked by design, not by a mutex): every
  // member below — the connection table, the wire stats, the round
  // pointer — is owned exclusively by the one thread driving Serve's
  // event loop. Per-round drainer threads never touch daemon state;
  // the only cross-thread handoff is the annotated BatchQueue inside
  // RoundState::queues (common/batch_queue.h), plus telemetry's
  // lock-free instruments. Adding a second toucher means adding a
  // Mutex + PS_GUARDED_BY here first.
  core::MechanismConfig config_;
  size_t num_users_;
  DaemonOptions options_;
  DaemonStats stats_;

  UniqueFd listener_;
  uint16_t port_ = 0;
  Poller poller_;
  std::vector<PollEvent> events_;
  std::vector<std::unique_ptr<Connection>> conns_;
  /// Scrape endpoint sharing poller_; its tags live at 1<<62 and up,
  /// far above any conns_ index and below kListenerTag.
  std::unique_ptr<telemetry::StatsEndpoint> stats_endpoint_;

  uint64_t current_round_ = 0;
  RoundState* round_ = nullptr;  ///< non-null only inside RunNetworkRound
};

}  // namespace privshape::collector

#endif  // PRIVSHAPE_COLLECTOR_DAEMON_H_
