#include "core/baseline.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "core/em_selection.h"
#include "core/length_estimation.h"
#include "core/population.h"
#include "trie/trie.h"

namespace privshape::core {

Result<MechanismResult> BaselineMechanism::Run(
    const std::vector<Sequence>& sequences) const {
  PRIVSHAPE_RETURN_IF_ERROR(config_.Validate());
  if (sequences.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  Rng rng(config_.seed);
  MechanismResult result;

  // The baseline only has two populations: P_a (length) and P_b (trie).
  FourWaySplit split = SplitFourWay(sequences.size(), config_.frac_a,
                                    /*fb=*/0.0, /*fc=*/1.0 - config_.frac_a,
                                    /*fd=*/0.0, &rng);
  const std::vector<size_t>& pa = split.pa;
  const std::vector<size_t>& pb = split.pc;  // trie population

  auto ell = EstimateFrequentLength(sequences, pa, config_.ell_low,
                                    config_.ell_high, config_.epsilon, &rng);
  if (!ell.ok()) return ell.status();
  int ell_s = *ell;
  result.frequent_length = ell_s;
  PRIVSHAPE_RETURN_IF_ERROR(result.accountant.Charge("Pa", config_.epsilon));

  auto trie_r = trie::CandidateTrie::Create(config_.t);
  if (!trie_r.ok()) return trie_r.status();
  trie::CandidateTrie trie = std::move(*trie_r);
  if (config_.allow_repeats) trie.set_allow_repeats(true);

  std::vector<std::vector<size_t>> level_groups =
      PartitionGroups(pb, static_cast<size_t>(ell_s));

  for (int level = 0; level < ell_s; ++level) {
    // Prune the current level, then expand (Algorithm 1 line 6).
    if (level > 0) {
      // If the threshold would prune everything, stop with the current
      // frontier intact so the mechanism still outputs its best shapes.
      double max_freq = 0.0;
      for (int id : trie.Frontier()) {
        max_freq = std::max(max_freq, trie.Frequency(id));
      }
      if (max_freq < config_.baseline_threshold) {
        PS_LOG(kWarning) << "baseline: threshold would prune all candidates "
                            "at level "
                         << level << "; stopping early";
        break;
      }
      trie.PruneBelowThreshold(config_.baseline_threshold);
      trie.ExpandAll();
    } else {
      trie.ExpandRoot();
    }

    std::vector<Sequence> candidates = trie.FrontierCandidates();
    auto counts = EmSelectionCounts(
        candidates, sequences, level_groups[static_cast<size_t>(level)],
        config_.metric, config_.epsilon, /*prefix_compare=*/true, &rng);
    if (!counts.ok()) return counts.status();
    PRIVSHAPE_RETURN_IF_ERROR(result.accountant.Charge(
        "Pb.level" + std::to_string(level), config_.epsilon));

    const std::vector<int>& frontier = trie.Frontier();
    for (size_t i = 0; i < frontier.size(); ++i) {
      PRIVSHAPE_RETURN_IF_ERROR(
          trie.SetFrequency(frontier[i], (*counts)[i]));
    }
  }

  // Output the top-k frequent shapes from the leaves.
  std::vector<int> leaves = trie.Frontier();
  std::stable_sort(leaves.begin(), leaves.end(), [&](int a, int b) {
    return trie.Frequency(a) > trie.Frequency(b);
  });
  size_t keep = std::min(static_cast<size_t>(config_.k), leaves.size());
  for (size_t i = 0; i < keep; ++i) {
    ShapeCandidate cand;
    cand.shape = trie.PathTo(leaves[i]);
    cand.frequency = trie.Frequency(leaves[i]);
    result.shapes.push_back(std::move(cand));
  }
  PRIVSHAPE_RETURN_IF_ERROR(
      result.accountant.CheckWithinBudget(config_.epsilon));
  return result;
}

}  // namespace privshape::core
