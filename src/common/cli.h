#ifndef PRIVSHAPE_COMMON_CLI_H_
#define PRIVSHAPE_COMMON_CLI_H_

#include <map>
#include <string>

namespace privshape {

/// Tiny flag parser for the bench/example binaries.
///
/// Accepts `--name=value` and `--name value`. Unrecognized positional
/// arguments are ignored. For every lookup, an environment variable
/// PRIVSHAPE_<NAME> (upper-cased) acts as fallback before the default,
/// so the whole harness can be scaled with e.g. PRIVSHAPE_TRIALS=50.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// Returns the flag (or env var) value as int/double/string, else `def`.
  int GetInt(const std::string& name, int def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name,
                        const std::string& def) const;
  bool Has(const std::string& name) const;

 private:
  /// Flag value, or env fallback, or empty optional semantics via bool.
  bool Lookup(const std::string& name, std::string* out) const;

  std::map<std::string, std::string> flags_;
};

/// The shared `--threads` flag (env PRIVSHAPE_THREADS): worker count for
/// every multi-threaded binary — the collector, the benches, and the bench
/// harness scale knobs all consume this one flag. `0` (the default) means
/// "hardware concurrency", matching ThreadPool's convention; negative or
/// malformed values also fall back to `def`.
size_t ThreadsFromArgs(const CliArgs& args, size_t def = 0);

}  // namespace privshape

#endif  // PRIVSHAPE_COMMON_CLI_H_
