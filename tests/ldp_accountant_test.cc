#include "ldp/accountant.h"

#include <gtest/gtest.h>

namespace privshape {
namespace {

using ldp::PrivacyAccountant;

TEST(AccountantTest, FreshAccountantSpendsNothing) {
  PrivacyAccountant acc;
  EXPECT_DOUBLE_EQ(acc.UserLevelEpsilon(), 0.0);
  EXPECT_TRUE(acc.CheckWithinBudget(0.0).ok());
}

TEST(AccountantTest, ParallelCompositionTakesMax) {
  PrivacyAccountant acc;
  ASSERT_TRUE(acc.Charge("Pa", 1.0).ok());
  ASSERT_TRUE(acc.Charge("Pb", 2.5).ok());
  ASSERT_TRUE(acc.Charge("Pc", 0.5).ok());
  EXPECT_DOUBLE_EQ(acc.UserLevelEpsilon(), 2.5);
}

TEST(AccountantTest, SequentialCompositionAddsWithinPopulation) {
  PrivacyAccountant acc;
  ASSERT_TRUE(acc.Charge("Pa", 1.0).ok());
  ASSERT_TRUE(acc.Charge("Pa", 1.5).ok());
  EXPECT_DOUBLE_EQ(acc.PopulationEpsilon("Pa"), 2.5);
  EXPECT_DOUBLE_EQ(acc.UserLevelEpsilon(), 2.5);
}

TEST(AccountantTest, UnknownPopulationIsZero) {
  PrivacyAccountant acc;
  EXPECT_DOUBLE_EQ(acc.PopulationEpsilon("nope"), 0.0);
}

TEST(AccountantTest, RejectsNegativeCharge) {
  PrivacyAccountant acc;
  EXPECT_FALSE(acc.Charge("Pa", -0.1).ok());
}

TEST(AccountantTest, BudgetCheckPassesAtExactBudget) {
  PrivacyAccountant acc;
  ASSERT_TRUE(acc.Charge("Pa", 4.0).ok());
  EXPECT_TRUE(acc.CheckWithinBudget(4.0).ok());
}

TEST(AccountantTest, BudgetCheckFailsWhenExceeded) {
  PrivacyAccountant acc;
  ASSERT_TRUE(acc.Charge("Pa", 4.0).ok());
  ASSERT_TRUE(acc.Charge("Pa", 0.5).ok());
  Status s = acc.CheckWithinBudget(4.0);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(AccountantTest, ChargesAreInspectable) {
  PrivacyAccountant acc;
  ASSERT_TRUE(acc.Charge("Pa", 1.0).ok());
  ASSERT_TRUE(acc.Charge("Pd", 2.0).ok());
  EXPECT_EQ(acc.charges().size(), 2u);
  EXPECT_DOUBLE_EQ(acc.charges().at("Pd"), 2.0);
}

}  // namespace
}  // namespace privshape
