/// \file
/// Differential fuzz target: the SoA candidate-table kernels vs the
/// scalar reference path. The input bytes steer a candidate list (with
/// arbitrary lengths, including empty and duplicates — the padding and
/// grouping arithmetic is exactly what we want stressed), a user word,
/// the metric, and the prefix mode; the harness then requires
/// bit-identical distances from CandidateTable::MatchInto vs
/// core::MatchDistances and an identical argmin (with tie-breaking)
/// from Closest vs core::ClosestCandidate. Any divergence or crash in
/// the lane/padding math aborts.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/em_selection.h"
#include "distance/candidate_table.h"
#include "distance/distance.h"

namespace dist = privshape::dist;
namespace core = privshape::core;
using privshape::Sequence;
using privshape::Symbol;

namespace {

/// Bitwise double equality (the contract is bit-identical, not "close").
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  size_t pos = 0;
  uint8_t selector = data[pos++];
  dist::Metric metric =
      (selector & 1) ? dist::Metric::kSed : dist::Metric::kDtw;
  bool prefix = (selector & 2) != 0;

  size_t word_len = data[pos++] % 17;  // 0..16, empty words included
  Sequence word;
  for (size_t i = 0; i < word_len && pos < size; ++i) {
    word.push_back(static_cast<Symbol>(data[pos++] % 8));
  }

  std::vector<Sequence> candidates;
  while (pos < size && candidates.size() < 24) {
    size_t len = data[pos++] % 13;  // 0..12, empty candidates included
    Sequence cand;
    for (size_t i = 0; i < len && pos < size; ++i) {
      cand.push_back(static_cast<Symbol>(data[pos++] % 8));
    }
    candidates.push_back(std::move(cand));
  }
  if (candidates.empty()) return 0;

  auto distance = dist::MakeDistance(metric);
  dist::CandidateTable table = dist::CandidateTable::Build(candidates);
  dist::TableScratch scratch;

  std::vector<double> got;
  table.MatchInto(word, *distance, prefix, &scratch, &got);
  std::vector<double> want =
      core::MatchDistances(word, candidates, prefix, *distance);
  if (got.size() != want.size()) std::abort();
  for (size_t i = 0; i < want.size(); ++i) {
    if (!SameBits(got[i], want[i])) std::abort();
  }

  size_t closest = table.Closest(word, *distance, &scratch);
  if (closest != core::ClosestCandidate(word, candidates, *distance)) {
    std::abort();
  }
  return 0;
}
