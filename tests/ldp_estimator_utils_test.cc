#include "ldp/estimator_utils.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ldp/grr.h"

namespace privshape {
namespace {

using ldp::ConfidenceHalfWidth;
using ldp::GrrParameters;
using ldp::MinimumPopulation;
using ldp::NormSub;
using ldp::OracleVariance;
using ldp::OueParameters;

TEST(EstimatorUtilsTest, GrrParametersMatchOracle) {
  auto grr = ldp::Grr::Create(7, 1.3);
  ASSERT_TRUE(grr.ok());
  double p, q;
  GrrParameters(7, 1.3, &p, &q);
  EXPECT_DOUBLE_EQ(p, grr->p());
  EXPECT_DOUBLE_EQ(q, grr->q());
}

TEST(EstimatorUtilsTest, OueParametersClosedForm) {
  double p, q;
  OueParameters(2.0, &p, &q);
  EXPECT_DOUBLE_EQ(p, 0.5);
  EXPECT_NEAR(q, 1.0 / (std::exp(2.0) + 1.0), 1e-12);
}

TEST(EstimatorUtilsTest, VarianceFormulaMatchesEmpiricalGrr) {
  // Empirical variance of the debiased zero-count estimate vs the formula.
  const double eps = 1.0;
  const size_t d = 5;
  const int n = 5000;
  const int runs = 200;
  double p, q;
  GrrParameters(d, eps, &p, &q);
  double predicted = OracleVariance(p, q, n, 0.0);

  double sum = 0, sum2 = 0;
  for (int run = 0; run < runs; ++run) {
    auto grr = ldp::Grr::Create(d, eps);
    Rng rng(1000 + static_cast<uint64_t>(run));
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(grr->SubmitUser(0, &rng).ok());  // value 4 has count 0
    }
    double est = grr->EstimateCounts()[4];
    sum += est;
    sum2 += est * est;
  }
  double mean = sum / runs;
  double empirical = sum2 / runs - mean * mean;
  EXPECT_NEAR(empirical / predicted, 1.0, 0.35);
}

TEST(EstimatorUtilsTest, ConfidenceHalfWidthScalesWithZ) {
  double p, q;
  GrrParameters(4, 1.0, &p, &q);
  double w1 = ConfidenceHalfWidth(p, q, 1000, 10, 1.0);
  double w2 = ConfidenceHalfWidth(p, q, 1000, 10, 2.0);
  EXPECT_NEAR(w2 / w1, 2.0, 1e-9);
}

TEST(NormSubTest, PreservesTotalAndNonNegativity) {
  std::vector<double> est = {50.0, -10.0, 70.0, -5.0, 15.0};
  auto out = NormSub(est, 120.0);
  double total = 0;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 120.0, 1e-9);
}

TEST(NormSubTest, NoOpWhenAlreadyConsistent) {
  std::vector<double> est = {30.0, 20.0, 50.0};
  auto out = NormSub(est, 100.0);
  EXPECT_NEAR(out[0], 30.0, 1e-9);
  EXPECT_NEAR(out[1], 20.0, 1e-9);
  EXPECT_NEAR(out[2], 50.0, 1e-9);
}

TEST(NormSubTest, AllNegativeFallsBackToUniform) {
  std::vector<double> est = {-5.0, -10.0};
  auto out = NormSub(est, 40.0);
  EXPECT_NEAR(out[0], 20.0, 1e-9);
  EXPECT_NEAR(out[1], 20.0, 1e-9);
}

TEST(NormSubTest, OrderingPreservedAmongPositives) {
  std::vector<double> est = {90.0, -20.0, 40.0, 10.0};
  auto out = NormSub(est, 120.0);
  EXPECT_GT(out[0], out[2]);
  EXPECT_GT(out[2], out[3]);
}

TEST(MinimumPopulationTest, MatchesVarianceFormula) {
  double p, q;
  GrrParameters(10, 1.0, &p, &q);
  auto n = MinimumPopulation(p, q, 25.0);
  ASSERT_TRUE(n.ok());
  // At the returned n, the zero-frequency stddev is <= 25.
  double stddev = std::sqrt(OracleVariance(p, q, static_cast<double>(*n), 0));
  EXPECT_LE(stddev, 25.0 * 1.01);
  // And just below it, > 25.
  double below = std::sqrt(
      OracleVariance(p, q, static_cast<double>(*n) * 0.9, 0));
  EXPECT_GT(below * 1.06, 25.0 * 0.9);
}

TEST(MinimumPopulationTest, RejectsBadInput) {
  EXPECT_FALSE(MinimumPopulation(0.5, 0.5, 10.0).ok());  // p == q
  EXPECT_FALSE(MinimumPopulation(0.9, 0.1, 0.0).ok());
}

}  // namespace
}  // namespace privshape
