#ifndef PRIVSHAPE_SERIES_SEQUENCE_H_
#define PRIVSHAPE_SERIES_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace privshape {

/// A SAX symbol. Symbols are ordinal: 0 maps to 'a' (lowest value band),
/// 1 to 'b', etc. Ordinality matters because the symbolic distance metrics
/// charge |a - b| per aligned pair.
using Symbol = uint8_t;

/// A (possibly compressed) SAX word.
using Sequence = std::vector<Symbol>;

/// Renders a sequence as lowercase letters ("acba"). Symbols >= 26 render
/// as '?'; the paper never uses alphabets that large.
std::string SequenceToString(const Sequence& seq);

/// Parses "acba" back into {0, 2, 1, 0}. Fails on non-lowercase input.
Result<Sequence> SequenceFromString(const std::string& s);

}  // namespace privshape

#endif  // PRIVSHAPE_SERIES_SEQUENCE_H_
